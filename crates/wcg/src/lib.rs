//! The wordlength compatibility graph `G(V, E)` of Section 2.1.
//!
//! The vertex set is partitioned into operations `O` and resource-wordlength
//! types `R`; the edge set into
//!
//! * `H` — undirected *wordlength edges* `{o, r}`, meaning resource type `r`
//!   can execute operation `o`.  Initially these are exactly the
//!   [`covers`](mwl_model::ResourceType::covers) pairs; the allocator later
//!   deletes edges to refine wordlength (and therefore latency) information.
//! * `C` — directed *compatibility edges* `(o1, o2)`, meaning `o1` is
//!   scheduled to complete before `o2` starts.  `C` is a transitive
//!   orientation of the comparability subgraph `G'(O, C)`, so a maximum
//!   clique of time-compatible operations is a longest chain and can be
//!   found in linear time over a topological (start-time) order.
//!
//! [`WordlengthCompatibilityGraph`] owns the `H` edges, the per-resource
//! latency/area quantities derived from a [`CostModel`], and (once a schedule
//! is attached) the `C` edges.  It provides the queries the `DPAlloc`
//! heuristic needs: latency upper bounds `L_o`, `O(r)`, `S(o)`, maximum
//! chains of uncovered operations, and wordlength-refinement edge deletion.
//!
//! The adjacency is stored **twice** — per operation and per resource, both
//! as sorted index lists — and the latency upper bounds `L_o` are cached, so
//! an edge deletion ([`refine_op`](WordlengthCompatibilityGraph::refine_op) /
//! [`delete_edge`](WordlengthCompatibilityGraph::delete_edge)) updates only
//! the rows it touches and the allocator's inner loop reads `O(r)`, `L_o`
//! and per-resource edge counts in `O(1)` without rebuilding tables.  The
//! schedule-interval buffer behind the `C` edges is likewise reused across
//! [`attach_schedule`](WordlengthCompatibilityGraph::attach_schedule) calls.
//!
//! *Pipeline position:* built first from the raw graph, then iteratively
//! refined by the `DPAlloc` loop (`mwl_core`) — Sections 2.1–2.2 of the
//! paper.  See `docs/ARCHITECTURE.md` for the full map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use mwl_model::{Area, CostModel, Cycles, OpId, ResourceType, SequencingGraph};
use mwl_sched::{OpLatencies, Schedule};

/// Index of a resource-wordlength type within the graph's resource list.
pub type ResourceIndex = usize;

/// Which kernel implementations the graph's chain/clique queries dispatch to.
///
/// [`Bitset`](KernelMode::Bitset) (the default) runs the word-parallel
/// popcount/AND kernels over the dense `u64` adjacency rows.
/// [`Oracle`](KernelMode::Oracle) runs the original sorted-`Vec` kernels the
/// bitset paths were derived from; it is retained as the equivalence oracle
/// for the property suites and as the "before" arm of the stage-attributed
/// perf gate.  Both modes answer every query identically — the mode only
/// selects *how* the answer is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Word-parallel bitset kernels (default).
    #[default]
    Bitset,
    /// The retained sorted-`Vec` kernels, used as a test oracle.
    Oracle,
}

const WORD_BITS: usize = u64::BITS as usize;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

#[inline]
fn bit_is_set(words: &[u64], bit: usize) -> bool {
    words[bit / WORD_BITS] >> (bit % WORD_BITS) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], bit: usize) {
    words[bit / WORD_BITS] |= 1 << (bit % WORD_BITS);
}

#[inline]
fn clear_bit(words: &mut [u64], bit: usize) {
    words[bit / WORD_BITS] &= !(1 << (bit % WORD_BITS));
}

/// Reusable buffers for
/// [`WordlengthCompatibilityGraph::max_chain_into`]: the candidate list and
/// the longest-chain dynamic-programming tables.
#[derive(Debug, Default)]
pub struct ChainScratch {
    candidates: Vec<OpId>,
    best: Vec<u32>,
    prev: Vec<u32>,
}

/// The wordlength compatibility graph.
///
/// # Examples
///
/// ```
/// use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
/// use mwl_wcg::WordlengthCompatibilityGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SequencingGraphBuilder::new();
/// let small = b.add_operation(OpShape::multiplier(8, 8));
/// let large = b.add_operation(OpShape::multiplier(16, 16));
/// let g = b.build()?;
///
/// let wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
/// // The small multiplication can run on the 8x8, 16x8 or 16x16 type...
/// assert_eq!(wcg.resources_for(small).len(), 3);
/// // ...so its latency upper bound is the latency of the 16x16 type.
/// assert_eq!(wcg.upper_bound_latency(small), 4);
/// assert_eq!(wcg.upper_bound_latency(large), 4);
/// # Ok(())
/// # }
/// ```
//
// Deliberately NOT Serialize/Deserialize: the struct carries redundant
// internal state (the per-resource mirror lists, cached upper bounds and
// sorted-row invariants of the per-op adjacency) that a hand-crafted
// deserialized value could silently violate.  Rebuild from the graph and
// cost model instead — construction is cheap and canonical.
#[derive(Debug, Clone)]
pub struct WordlengthCompatibilityGraph {
    /// Candidate resource-wordlength types (the vertex subset `R`).
    resources: Vec<ResourceType>,
    /// Latency of each resource type under the cost model.
    latencies: Vec<Cycles>,
    /// Area of each resource type under the cost model.
    areas: Vec<Area>,
    /// `H` edges per operation: compatible resource indices, ascending.
    edges: Vec<Vec<ResourceIndex>>,
    /// `H` edges per resource: compatible operations, ascending (the mirror
    /// of `edges`, maintained through every deletion).
    resource_ops: Vec<Vec<OpId>>,
    /// Cached latency upper bound `L_o` per operation (meaningless — and
    /// never read — for an operation whose last edge was deleted).
    upper: Vec<Cycles>,
    /// Schedule-derived start/end intervals used for the `C` edges
    /// (operation `o1` precedes `o2` iff `end(o1) <= start(o2)`).  The
    /// buffer is retained across attach/detach cycles.
    intervals: Vec<(Cycles, Cycles)>,
    /// Whether `intervals` currently holds an attached schedule.
    scheduled: bool,
    /// Which kernel family the chain/clique queries dispatch to.
    kernel_mode: KernelMode,
    /// Words per op row in `op_rows` (`ceil(|R| / 64)`).
    res_words: usize,
    /// Words per resource column in `resource_cols` and per op row in
    /// `compat` (`ceil(|O| / 64)`).
    op_words: usize,
    /// Dense `H` adjacency per operation: bit `r` of row `o` is set iff the
    /// edge `{o, r}` is present.  Flat, stride `res_words`.
    op_rows: Vec<u64>,
    /// Dense `H` adjacency per resource (the transpose of `op_rows`): bit
    /// `o` of column `r` is set iff `{o, r}` is present.  Flat, stride
    /// `op_words`.
    resource_cols: Vec<u64>,
    /// Undirected time-compatibility masks (the symmetric closure of the `C`
    /// edges): bit `j` of row `i` is set iff the execution intervals of `i`
    /// and `j` are disjoint.  Flat, stride `op_words`; valid only while a
    /// schedule is attached.
    compat: Vec<u64>,
    /// All operations sorted by `(start, end, id)` under the attached
    /// schedule — the shared candidate order of every `max_chain` query.
    start_order: Vec<OpId>,
    /// Unrefined copies of the refinement-mutable `H` tables, captured by
    /// [`snapshot_pristine`](Self::snapshot_pristine).
    pristine_edges: Vec<Vec<ResourceIndex>>,
    /// See `pristine_edges`.
    pristine_resource_ops: Vec<Vec<OpId>>,
    /// See `pristine_edges`.
    pristine_upper: Vec<Cycles>,
    /// See `pristine_edges`.
    pristine_op_rows: Vec<u64>,
    /// See `pristine_edges`.
    pristine_resource_cols: Vec<u64>,
    /// Whether the pristine buffers hold a snapshot of the current problem.
    pristine_valid: bool,
}

impl Default for WordlengthCompatibilityGraph {
    /// An empty graph, intended as a reusable workspace for
    /// [`rebuild`](Self::rebuild).
    fn default() -> Self {
        WordlengthCompatibilityGraph {
            resources: Vec::new(),
            latencies: Vec::new(),
            areas: Vec::new(),
            edges: Vec::new(),
            resource_ops: Vec::new(),
            upper: Vec::new(),
            intervals: Vec::new(),
            scheduled: false,
            kernel_mode: KernelMode::default(),
            res_words: 0,
            op_words: 0,
            op_rows: Vec::new(),
            resource_cols: Vec::new(),
            compat: Vec::new(),
            start_order: Vec::new(),
            pristine_edges: Vec::new(),
            pristine_resource_ops: Vec::new(),
            pristine_upper: Vec::new(),
            pristine_op_rows: Vec::new(),
            pristine_resource_cols: Vec::new(),
            pristine_valid: false,
        }
    }
}

impl WordlengthCompatibilityGraph {
    /// Builds the initial graph for a sequencing graph under a cost model:
    /// the resource set is extracted from the operations and every `{o, r}`
    /// pair with `r.covers(o)` becomes an `H` edge.  No `C` edges exist until
    /// [`attach_schedule`](Self::attach_schedule) is called.
    #[must_use]
    pub fn new(graph: &SequencingGraph, cost: &dyn CostModel) -> Self {
        let mut wcg = Self::default();
        wcg.rebuild(graph, cost);
        wcg
    }

    /// Builds the graph with an explicitly supplied resource set.
    #[must_use]
    pub fn with_resources(
        graph: &SequencingGraph,
        resources: Vec<ResourceType>,
        cost: &dyn CostModel,
    ) -> Self {
        let mut wcg = Self::default();
        wcg.rebuild_with_resources(graph, resources, cost);
        wcg
    }

    /// Re-initialises this graph for a (possibly different) sequencing graph,
    /// reusing every buffer — the allocation-free counterpart of
    /// [`new`](Self::new), used by the allocator to restart refinement after
    /// a resource-bound escalation and by the batch driver's per-worker
    /// workspaces.  The result is indistinguishable from a freshly
    /// constructed graph.
    pub fn rebuild(&mut self, graph: &SequencingGraph, cost: &dyn CostModel) {
        let resources = graph.extract_resource_types();
        self.rebuild_with_resources(graph, resources, cost);
    }

    fn rebuild_with_resources(
        &mut self,
        graph: &SequencingGraph,
        resources: Vec<ResourceType>,
        cost: &dyn CostModel,
    ) {
        self.resources = resources;
        let num_resources = self.resources.len();
        self.latencies.clear();
        self.latencies
            .extend(self.resources.iter().map(|r| cost.latency(r)));
        self.areas.clear();
        self.areas
            .extend(self.resources.iter().map(|r| cost.area(r)));

        self.resource_ops.truncate(num_resources);
        if self.resource_ops.len() < num_resources {
            self.resource_ops.resize_with(num_resources, Vec::new);
        }
        for list in &mut self.resource_ops {
            list.clear();
        }

        let n = graph.len();
        self.edges.truncate(n);
        if self.edges.len() < n {
            self.edges.resize_with(n, Vec::new);
        }
        self.upper.clear();
        self.upper.resize(n, 0);
        self.res_words = words_for(num_resources);
        self.op_words = words_for(n);
        self.op_rows.clear();
        self.op_rows.resize(n * self.res_words, 0);
        self.resource_cols.clear();
        self.resource_cols.resize(num_resources * self.op_words, 0);
        for (i, op) in graph.operations().iter().enumerate() {
            let shape = op.shape();
            self.edges[i].clear();
            for j in 0..num_resources {
                if self.resources[j].covers(shape) {
                    self.edges[i].push(j);
                    self.resource_ops[j].push(OpId::new(i as u32));
                    set_bit(&mut self.op_rows[i * self.res_words..], j);
                    set_bit(&mut self.resource_cols[j * self.op_words..], i);
                }
            }
            self.upper[i] = self.edges[i]
                .iter()
                .map(|&r| self.latencies[r])
                .max()
                .unwrap_or(0);
        }
        self.intervals.clear();
        self.scheduled = false;
        self.pristine_valid = false;
    }

    /// Captures the current — typically just-rebuilt, unrefined — `H`
    /// tables so a later [`restore_pristine`](Self::restore_pristine) can
    /// undo every refinement deletion without re-deriving the graph.  The
    /// allocator snapshots once per job and restores per resource-bound
    /// escalation: restoring is a handful of flat copies, where a full
    /// [`rebuild`](Self::rebuild) re-extracts the resource set and
    /// re-queries the cost model.
    pub fn snapshot_pristine(&mut self) {
        self.pristine_edges.clone_from(&self.edges);
        self.pristine_resource_ops.clone_from(&self.resource_ops);
        self.pristine_upper.clone_from(&self.upper);
        self.pristine_op_rows.clone_from(&self.op_rows);
        self.pristine_resource_cols.clone_from(&self.resource_cols);
        self.pristine_valid = true;
    }

    /// Restores the tables captured by
    /// [`snapshot_pristine`](Self::snapshot_pristine) and detaches any
    /// schedule — observably identical to a fresh
    /// [`rebuild`](Self::rebuild) with the same graph and cost model.
    ///
    /// # Panics
    ///
    /// Panics if no snapshot was taken since the last rebuild.
    pub fn restore_pristine(&mut self) {
        assert!(
            self.pristine_valid,
            "restore_pristine without a snapshot of the current problem"
        );
        self.edges.clone_from(&self.pristine_edges);
        self.resource_ops.clone_from(&self.pristine_resource_ops);
        self.upper.clone_from(&self.pristine_upper);
        self.op_rows.clone_from(&self.pristine_op_rows);
        self.resource_cols.clone_from(&self.pristine_resource_cols);
        self.intervals.clear();
        self.scheduled = false;
    }

    /// Selects the kernel family ([`KernelMode`]) the chain/clique queries
    /// dispatch to.  The mode survives [`rebuild`](Self::rebuild) — it is a
    /// property of the workspace, not of one problem.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.kernel_mode = mode;
    }

    /// The active kernel family.
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// Words per operation-set mask (`ceil(|O| / 64)`) — the stride callers
    /// of [`mask_covered_by`](Self::mask_covered_by) and
    /// [`mask_is_chain`](Self::mask_is_chain) must use.
    #[must_use]
    #[inline]
    pub fn op_mask_words(&self) -> usize {
        self.op_words
    }

    /// Number of operations `|O|`.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.edges.len()
    }

    /// The resource-wordlength types `R`.
    #[must_use]
    pub fn resources(&self) -> &[ResourceType] {
        &self.resources
    }

    /// One resource type by index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn resource(&self, index: ResourceIndex) -> &ResourceType {
        &self.resources[index]
    }

    /// Latency of a resource type under the construction cost model.
    #[must_use]
    pub fn resource_latency(&self, index: ResourceIndex) -> Cycles {
        self.latencies[index]
    }

    /// Area of a resource type under the construction cost model.
    #[must_use]
    pub fn resource_area(&self, index: ResourceIndex) -> Area {
        self.areas[index]
    }

    /// The resource indices compatible with an operation (the `H`-neighbours
    /// of `o`, i.e. the candidates from which `S(o)` is drawn).
    #[must_use]
    pub fn resources_for(&self, op: OpId) -> Vec<ResourceIndex> {
        self.edges[op.index()].clone()
    }

    /// Borrowed view of [`resources_for`](Self::resources_for): the
    /// compatible resource indices of an operation, ascending, without
    /// copying.
    #[must_use]
    #[inline]
    pub fn candidate_slice(&self, op: OpId) -> &[ResourceIndex] {
        &self.edges[op.index()]
    }

    /// Returns `true` if the `H` edge `{o, r}` is present.
    #[must_use]
    #[inline]
    pub fn has_edge(&self, op: OpId, resource: ResourceIndex) -> bool {
        match self.kernel_mode {
            KernelMode::Bitset => {
                bit_is_set(&self.op_rows[op.index() * self.res_words..], resource)
            }
            KernelMode::Oracle => self.edges[op.index()].binary_search(&resource).is_ok(),
        }
    }

    /// The operations compatible with a resource type (`O(r)`).
    #[must_use]
    pub fn ops_for(&self, resource: ResourceIndex) -> Vec<OpId> {
        self.resource_ops[resource].clone()
    }

    /// Borrowed view of [`ops_for`](Self::ops_for): the operations
    /// compatible with a resource, ascending, without copying.
    #[must_use]
    #[inline]
    pub fn ops_for_slice(&self, resource: ResourceIndex) -> &[OpId] {
        &self.resource_ops[resource]
    }

    /// All per-resource operation lists (`O(r)` for every `r`), in resource
    /// order — the set-cover rows consumed by
    /// [`mwl_sched::scheduling_set_into`].
    #[must_use]
    #[inline]
    pub fn resource_op_lists(&self) -> &[Vec<OpId>] {
        &self.resource_ops
    }

    /// Number of `H` edges incident to one resource (`|O(r)|`), maintained
    /// incrementally — the quantity behind the refinement rule's
    /// deletion-proportion denominator.
    #[must_use]
    #[inline]
    pub fn resource_edge_count(&self, resource: ResourceIndex) -> usize {
        self.resource_ops[resource].len()
    }

    /// Total number of `H` edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Latency upper bound `L_o`: the latency of the slowest resource the
    /// operation is still compatible with.
    ///
    /// # Panics
    ///
    /// Panics if every `H` edge of the operation has been deleted; the
    /// allocator never removes the last edge of an operation.
    #[must_use]
    #[inline]
    pub fn upper_bound_latency(&self, op: OpId) -> Cycles {
        assert!(
            !self.edges[op.index()].is_empty(),
            "operation retains at least one compatible resource"
        );
        self.upper[op.index()]
    }

    /// Latency upper bounds for all operations, in a form directly usable by
    /// the schedulers.
    #[must_use]
    pub fn upper_bound_latencies(&self) -> OpLatencies {
        (0..self.num_ops())
            .map(|i| self.upper_bound_latency(OpId::new(i as u32)))
            .collect()
    }

    /// Borrowed view of the cached upper bounds `L_o`, indexed by operation.
    /// Entries of operations whose last edge was deleted are meaningless;
    /// the allocator guarantees that never happens.
    #[must_use]
    #[inline]
    pub fn upper_bound_slice(&self) -> &[Cycles] {
        &self.upper
    }

    /// Re-derives the cached upper bound of one operation after its edge row
    /// changed.
    fn refresh_upper(&mut self, op: usize) {
        self.upper[op] = self.edges[op]
            .iter()
            .map(|&r| self.latencies[r])
            .max()
            .unwrap_or(0);
    }

    /// Removes `op` from the mirror list of `resource`.
    fn unlink_resource(&mut self, op: OpId, resource: ResourceIndex) {
        if let Ok(pos) = self.resource_ops[resource].binary_search(&op) {
            self.resource_ops[resource].remove(pos);
        }
    }

    /// Clears the dense-adjacency bits of one `H` edge.
    fn clear_edge_bits(&mut self, op: usize, resource: ResourceIndex) {
        clear_bit(&mut self.op_rows[op * self.res_words..], resource);
        clear_bit(&mut self.resource_cols[resource * self.op_words..], op);
    }

    /// Deletes a single `H` edge.  Returns `true` if the edge existed.
    pub fn delete_edge(&mut self, op: OpId, resource: ResourceIndex) -> bool {
        let row = &mut self.edges[op.index()];
        let Ok(pos) = row.binary_search(&resource) else {
            return false;
        };
        row.remove(pos);
        self.unlink_resource(op, resource);
        self.clear_edge_bits(op.index(), resource);
        self.refresh_upper(op.index());
        true
    }

    /// Deletes every `H` edge `{op, r}` whose resource latency equals the
    /// operation's current upper bound `L_o` — the paper's wordlength
    /// refinement step.  The deletion is skipped (returning 0) when it would
    /// leave the operation with no compatible resource.
    ///
    /// Returns the number of edges removed.
    pub fn refine_op(&mut self, op: OpId) -> usize {
        match self.kernel_mode {
            KernelMode::Bitset => self.refine_op_inplace(op),
            KernelMode::Oracle => self.refine_op_oracle(op),
        }
    }

    /// Allocation-free refinement: deletes the at-bound edges in place.  An
    /// operation whose every remaining candidate sits at the bound latency
    /// cannot be refined without being stranded (that is exactly the
    /// "single distinct latency" case), so the early return is equivalent to
    /// the oracle's `slow.len() == row.len() && !refinable` guard — and once
    /// a faster edge is known to survive, the deletion loop can never remove
    /// the last edge.
    fn refine_op_inplace(&mut self, op: OpId) -> usize {
        let bound = self.upper_bound_latency(op);
        if self.edges[op.index()]
            .iter()
            .all(|&r| self.latencies[r] == bound)
        {
            return 0;
        }
        let mut removed = 0;
        let mut i = 0;
        while i < self.edges[op.index()].len() {
            let r = self.edges[op.index()][i];
            if self.latencies[r] == bound {
                self.edges[op.index()].remove(i);
                self.unlink_resource(op, r);
                self.clear_edge_bits(op.index(), r);
                removed += 1;
            } else {
                i += 1;
            }
        }
        self.refresh_upper(op.index());
        removed
    }

    /// The retained sorted-`Vec` refinement kernel ([`KernelMode::Oracle`]).
    fn refine_op_oracle(&mut self, op: OpId) -> usize {
        let bound = self.upper_bound_latency(op);
        let row = &self.edges[op.index()];
        let slow: Vec<ResourceIndex> = row
            .iter()
            .copied()
            .filter(|&r| self.latencies[r] == bound)
            .collect();
        if slow.len() == row.len() && !self.refinable(op) {
            // All remaining candidates share the same (minimal) latency:
            // nothing can be refined away without stranding the operation.
            return 0;
        }
        let mut removed = 0;
        for r in slow {
            if self.edges[op.index()].len() == 1 {
                break;
            }
            if self.delete_edge(op, r) {
                removed += 1;
            }
        }
        removed
    }

    /// Returns `true` if the operation still has more than one distinct
    /// candidate latency, i.e. refinement could still lower its upper bound.
    #[must_use]
    pub fn refinable(&self, op: OpId) -> bool {
        let mut latencies = self.edges[op.index()].iter().map(|&r| self.latencies[r]);
        let Some(first) = latencies.next() else {
            return false;
        };
        latencies.any(|l| l != first)
    }

    /// Attaches schedule information, creating the `C` edges: `(o1, o2) ∈ C`
    /// iff `o1` completes no later than `o2` starts under the given start
    /// times and latency table.  The interval buffer is reused, so repeated
    /// attach/detach cycles in the allocator loop are allocation-free.
    pub fn attach_schedule(&mut self, schedule: &Schedule, latencies: &OpLatencies) {
        self.intervals.clear();
        self.intervals.extend((0..self.num_ops()).map(|i| {
            let op = OpId::new(i as u32);
            (schedule.start(op), schedule.end(op, latencies))
        }));
        let n = self.num_ops();
        let intervals = &self.intervals;
        self.start_order.clear();
        self.start_order.extend((0..n).map(|i| OpId::new(i as u32)));
        self.start_order
            .sort_unstable_by_key(|o| (intervals[o.index()].0, intervals[o.index()].1, *o));
        self.compat.clear();
        self.compat.resize(n * self.op_words, 0);
        for i in 0..n {
            let (start_i, end_i) = self.intervals[i];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (start_j, end_j) = self.intervals[j];
                if end_i <= start_j || end_j <= start_i {
                    set_bit(&mut self.compat[i * self.op_words..], j);
                }
            }
        }
        self.scheduled = true;
    }

    /// Removes the `C` edges (used when the allocator reschedules).
    pub fn detach_schedule(&mut self) {
        self.scheduled = false;
    }

    /// Returns `true` if a schedule has been attached.
    #[must_use]
    pub fn has_schedule(&self) -> bool {
        self.scheduled
    }

    fn intervals(&self, context: &str) -> &[(Cycles, Cycles)] {
        assert!(
            self.scheduled,
            "attach_schedule must be called before {context}"
        );
        &self.intervals
    }

    /// Returns `true` if the directed compatibility edge `(o1, o2)` exists:
    /// `o1` completes before (or exactly when) `o2` starts.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn compatible(&self, o1: OpId, o2: OpId) -> bool {
        let intervals = self.intervals("compatibility queries");
        intervals[o1.index()].1 <= intervals[o2.index()].0
    }

    /// Returns `true` if the given operations are pairwise time-compatible,
    /// i.e. they form a clique of the comparability graph `G'(O, C)` and can
    /// therefore share one resource.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn is_chain(&self, ops: &[OpId]) -> bool {
        match self.kernel_mode {
            KernelMode::Bitset => {
                // A set of operations is a chain iff every pair is
                // time-compatible (pairwise-disjoint intervals can always be
                // ordered by start time), so the query reduces to probes of
                // the `compat` masks — no sort, no allocation.
                let _ = self.intervals("compatibility queries");
                ops.iter().enumerate().all(|(idx, &a)| {
                    let row = &self.compat[a.index() * self.op_words..];
                    ops[idx + 1..].iter().all(|&b| bit_is_set(row, b.index()))
                })
            }
            KernelMode::Oracle => self.is_chain_oracle(ops),
        }
    }

    /// The retained sort-based chain test ([`KernelMode::Oracle`]).
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn is_chain_oracle(&self, ops: &[OpId]) -> bool {
        let intervals = self.intervals("compatibility queries");
        let mut sorted: Vec<OpId> = ops.to_vec();
        sorted.sort_by_key(|o| intervals[o.index()].0);
        sorted
            .windows(2)
            .all(|w| intervals[w[0].index()].1 <= intervals[w[1].index()].0)
    }

    /// Returns `true` if every operation in the mask (stride
    /// [`op_mask_words`](Self::op_mask_words)) is `H`-compatible with the
    /// given resource — the word-parallel form of the clique-growth cover
    /// check (`mask ∧ ¬O(r) = ∅`).
    #[must_use]
    #[inline]
    pub fn mask_covered_by(&self, mask: &[u64], resource: ResourceIndex) -> bool {
        let col = &self.resource_cols[resource * self.op_words..][..self.op_words];
        mask.iter().zip(col).all(|(&m, &c)| m & !c == 0)
    }

    /// Number of operations in the mask (stride
    /// [`op_mask_words`](Self::op_mask_words)) that are `H`-compatible with
    /// the given resource: `popcount(mask ∧ O(r))`.  An upper bound on the
    /// length of any chain of masked operations on `resource`, which lets
    /// `BindSelect` skip resources that cannot beat the incumbent ratio
    /// without running the chain DP.
    #[must_use]
    #[inline]
    pub fn mask_candidate_count(&self, mask: &[u64], resource: ResourceIndex) -> usize {
        let col = &self.resource_cols[resource * self.op_words..][..self.op_words];
        mask.iter()
            .zip(col)
            .map(|(&m, &c)| (m & c).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if the operations in the mask (stride
    /// [`op_mask_words`](Self::op_mask_words)) are pairwise time-compatible:
    /// for every member `i`, the mask minus `i` must sit inside `i`'s
    /// compatibility row.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn mask_is_chain(&self, mask: &[u64]) -> bool {
        let _ = self.intervals("compatibility queries");
        for (w, &word) in mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row = &self.compat[(w * WORD_BITS + b) * self.op_words..][..self.op_words];
                for (v, (&m, &c)) in mask.iter().zip(row).enumerate() {
                    let mut others = m & !c;
                    if v == w {
                        others &= !(1u64 << b);
                    }
                    if others != 0 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Finds a maximum clique of *uncovered* operations within `O(r)`.
    ///
    /// Because `C` is a transitive orientation, a clique is a chain of
    /// operations whose execution intervals do not overlap; the maximum one
    /// is found by dynamic programming over operations sorted by start time.
    /// Returns the operations of the chain in execution order (possibly
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn max_chain(&self, resource: ResourceIndex, covered: &[bool]) -> Vec<OpId> {
        let mut scratch = ChainScratch::default();
        let mut chain = Vec::new();
        self.max_chain_into(resource, covered, &mut scratch, &mut chain);
        chain
    }

    /// As [`max_chain`](Self::max_chain), but writes the chain into a
    /// reusable buffer — the allocation-free form `BindSelect` runs once per
    /// resource per covering round.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    pub fn max_chain_into(
        &self,
        resource: ResourceIndex,
        covered: &[bool],
        scratch: &mut ChainScratch,
        chain: &mut Vec<OpId>,
    ) {
        chain.clear();
        let intervals = self.intervals("max_chain");
        let ChainScratch {
            candidates,
            best,
            prev,
        } = scratch;
        candidates.clear();
        match self.kernel_mode {
            KernelMode::Bitset => {
                // `start_order` is already sorted by the total key
                // `(start, end, id)`, so filtering it by the resource-column
                // bit yields exactly the sequence the oracle produces by
                // sorting the filtered `O(r)` list.
                let col = &self.resource_cols[resource * self.op_words..][..self.op_words];
                candidates.extend(
                    self.start_order
                        .iter()
                        .copied()
                        .filter(|o| !covered[o.index()] && bit_is_set(col, o.index())),
                );
            }
            KernelMode::Oracle => {
                candidates.extend(
                    self.resource_ops[resource]
                        .iter()
                        .copied()
                        .filter(|o| !covered[o.index()]),
                );
                candidates.sort_by_key(|o| (intervals[o.index()].0, intervals[o.index()].1, *o));
            }
        }
        let k = candidates.len();
        if k == 0 {
            return;
        }
        // best[i]: length of the longest chain ending at candidate i.
        best.clear();
        best.resize(k, 1);
        prev.clear();
        prev.resize(k, u32::MAX);
        for i in 0..k {
            for j in 0..i {
                let end_j = intervals[candidates[j].index()].1;
                let start_i = intervals[candidates[i].index()].0;
                if end_j <= start_i && best[j] + 1 > best[i] {
                    best[i] = best[j] + 1;
                    prev[i] = j as u32;
                }
            }
        }
        let mut tail = (0..k).max_by_key(|&i| best[i]).expect("k > 0");
        chain.push(candidates[tail]);
        while prev[tail] != u32::MAX {
            tail = prev[tail] as usize;
            chain.push(candidates[tail]);
        }
        chain.reverse();
    }

    /// The cheapest resource (by area) able to execute every operation in the
    /// given set, if one exists.
    #[must_use]
    pub fn cheapest_common_resource(&self, ops: &[OpId]) -> Option<ResourceIndex> {
        if self.kernel_mode == KernelMode::Bitset && !ops.is_empty() {
            // AND the op rows word by word; surviving bits are the common
            // resources.  Words past the resource count are always zero.
            let mut best: Option<ResourceIndex> = None;
            for w in 0..self.res_words {
                let mut acc = u64::MAX;
                for &o in ops {
                    acc &= self.op_rows[o.index() * self.res_words + w];
                }
                while acc != 0 {
                    let r = w * WORD_BITS + acc.trailing_zeros() as usize;
                    acc &= acc - 1;
                    if best.is_none_or(|b| (self.areas[r], r) < (self.areas[b], b)) {
                        best = Some(r);
                    }
                }
            }
            return best;
        }
        (0..self.resources.len())
            .filter(|&r| ops.iter().all(|&o| self.has_edge(o, r)))
            .min_by_key(|&r| (self.areas[r], r))
    }

    /// Candidate lists in the shape expected by
    /// [`mwl_sched::scheduling_set`]: entry `i` lists the resource indices
    /// compatible with operation `i`.
    #[must_use]
    pub fn op_candidate_lists(&self) -> Vec<Vec<ResourceIndex>> {
        self.edges.clone()
    }
}

impl fmt::Display for WordlengthCompatibilityGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wordlength compatibility graph: {} operations, {} resource types, {} H edges",
            self.num_ops(),
            self.resources.len(),
            self.num_edges()
        )?;
        for (i, r) in self.resources.iter().enumerate() {
            let ops: Vec<String> = self.ops_for(i).iter().map(ToString::to_string).collect();
            writeln!(
                f,
                "  r{i}: {r} (latency {}, area {}) <- [{}]",
                self.latencies[i],
                self.areas[i],
                ops.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
    use mwl_sched::{asap, OpLatencies};

    /// Two small and one large multiplication plus an adder.
    fn sample() -> (SequencingGraph, WordlengthCompatibilityGraph) {
        let mut b = SequencingGraphBuilder::new();
        let m_small = b.add_operation(OpShape::multiplier(8, 8));
        let m_mid = b.add_operation(OpShape::multiplier(12, 10));
        let m_big = b.add_operation(OpShape::multiplier(16, 16));
        let a = b.add_operation(OpShape::adder(20));
        b.add_dependency(m_small, a).unwrap();
        b.add_dependency(m_mid, a).unwrap();
        b.add_dependency(m_big, a).unwrap();
        let g = b.build().unwrap();
        let wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
        (g, wcg)
    }

    #[test]
    fn construction_creates_cover_edges() {
        let (g, wcg) = sample();
        assert_eq!(wcg.num_ops(), g.len());
        // Every op has at least one edge; the big multiplier covers all muls.
        for op in g.op_ids() {
            assert!(!wcg.resources_for(op).is_empty());
        }
        let big_idx = wcg
            .resources()
            .iter()
            .position(|r| *r == ResourceType::multiplier(16, 16))
            .unwrap();
        assert_eq!(wcg.ops_for(big_idx).len(), 3);
        // The adder type covers only the adder op.
        let adder_idx = wcg
            .resources()
            .iter()
            .position(|r| *r == ResourceType::adder(20))
            .unwrap();
        assert_eq!(wcg.ops_for(adder_idx), vec![OpId::new(3)]);
    }

    #[test]
    fn resource_costs_cached() {
        let (_, wcg) = sample();
        let model = SonicCostModel::default();
        for (i, r) in wcg.resources().iter().enumerate() {
            assert_eq!(wcg.resource_latency(i), model.latency(r));
            assert_eq!(wcg.resource_area(i), model.area(r));
            assert_eq!(wcg.resource(i), r);
        }
    }

    #[test]
    fn upper_bounds_use_slowest_compatible_resource() {
        let (_, wcg) = sample();
        // The 8x8 multiplication may be executed on the 16x16 multiplier:
        // upper bound = ceil(32/8) = 4 rather than its native 2.
        assert_eq!(wcg.upper_bound_latency(OpId::new(0)), 4);
        assert_eq!(wcg.upper_bound_latency(OpId::new(2)), 4);
        assert_eq!(wcg.upper_bound_latency(OpId::new(3)), 2);
        let all = wcg.upper_bound_latencies();
        assert_eq!(all.get(OpId::new(0)), 4);
        assert_eq!(wcg.upper_bound_slice(), all.as_slice());
    }

    #[test]
    fn refine_op_deletes_slowest_edges() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        let before = wcg.resources_for(op).len();
        assert!(wcg.refinable(op));
        let removed = wcg.refine_op(op);
        assert!(removed > 0);
        assert_eq!(wcg.resources_for(op).len(), before - removed);
        assert!(wcg.upper_bound_latency(op) < 4);
    }

    #[test]
    fn refine_op_never_strands_an_operation() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        // Refine until no longer possible.
        let mut guard = 0;
        while wcg.refinable(op) {
            assert!(wcg.refine_op(op) > 0);
            guard += 1;
            assert!(guard < 100, "refinement must terminate");
        }
        assert!(!wcg.resources_for(op).is_empty());
        assert_eq!(wcg.refine_op(op), 0);
        // The remaining candidates all have the native (minimum) latency.
        assert_eq!(wcg.upper_bound_latency(op), 2);
    }

    #[test]
    fn delete_edge_reports_presence() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        let r = wcg.resources_for(op)[0];
        assert!(wcg.has_edge(op, r));
        assert!(wcg.delete_edge(op, r));
        assert!(!wcg.delete_edge(op, r));
        assert!(!wcg.has_edge(op, r));
    }

    #[test]
    fn mirrors_stay_consistent_through_deletions() {
        let (g, mut wcg) = sample();
        // Delete a few edges, then cross-check both adjacency directions and
        // the cached quantities against first-principles recomputation.
        wcg.refine_op(OpId::new(0));
        wcg.delete_edge(OpId::new(2), wcg.resources_for(OpId::new(2))[0]);
        for r in 0..wcg.resources().len() {
            let scan: Vec<OpId> = g.op_ids().filter(|&o| wcg.has_edge(o, r)).collect();
            assert_eq!(wcg.ops_for(r), scan);
            assert_eq!(wcg.resource_edge_count(r), scan.len());
            assert_eq!(wcg.ops_for_slice(r), &scan[..]);
            assert_eq!(&wcg.resource_op_lists()[r], &scan);
        }
        for op in g.op_ids() {
            let row = wcg.resources_for(op);
            assert_eq!(wcg.candidate_slice(op), &row[..]);
            if !row.is_empty() {
                let max = row.iter().map(|&r| wcg.resource_latency(r)).max().unwrap();
                assert_eq!(wcg.upper_bound_latency(op), max);
            }
        }
    }

    #[test]
    fn compatibility_follows_schedule() {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        assert!(!wcg.has_schedule());
        wcg.attach_schedule(&schedule, &lat);
        assert!(wcg.has_schedule());
        // The three multiplications start together (incompatible); each is
        // compatible with the adder that consumes them.
        assert!(!wcg.compatible(OpId::new(0), OpId::new(1)));
        assert!(wcg.compatible(OpId::new(0), OpId::new(3)));
        assert!(wcg.compatible(OpId::new(2), OpId::new(3)));
        assert!(!wcg.compatible(OpId::new(3), OpId::new(0)));
        assert!(wcg.is_chain(&[OpId::new(0), OpId::new(3)]));
        assert!(!wcg.is_chain(&[OpId::new(0), OpId::new(1)]));
        wcg.detach_schedule();
        assert!(!wcg.has_schedule());
    }

    #[test]
    fn max_chain_finds_longest_sequential_run() {
        // A chain of three 8x8 muls plus one parallel mul: the longest chain
        // on the shared multiplier type has length 3.
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::multiplier(8, 8));
        let z = b.add_operation(OpShape::multiplier(8, 8));
        let w = b.add_operation(OpShape::multiplier(8, 8));
        b.add_dependency(x, y).unwrap();
        b.add_dependency(y, z).unwrap();
        let g = b.build().unwrap();
        let mut wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        let chain = wcg.max_chain(0, &[false; 4]);
        assert_eq!(chain, vec![x, y, z]);
        // Covered operations are skipped.
        let mut covered = vec![false; 4];
        covered[y.index()] = true;
        let chain = wcg.max_chain(0, &covered);
        assert_eq!(chain.len(), 2);
        assert!(!chain.contains(&y));
        let _ = w;
    }

    #[test]
    fn max_chain_empty_when_all_covered() {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        let covered = vec![true; g.len()];
        assert!(wcg.max_chain(0, &covered).is_empty());
    }

    #[test]
    fn cheapest_common_resource() {
        let (_, wcg) = sample();
        // Small and mid multiplications share the 12x10 type (cheaper than
        // 16x16); all three multiplications only share the 16x16 type.
        let r = wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(1)])
            .unwrap();
        assert_eq!(*wcg.resource(r), ResourceType::multiplier(12, 10));
        let r = wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(1), OpId::new(2)])
            .unwrap();
        assert_eq!(*wcg.resource(r), ResourceType::multiplier(16, 16));
        // No resource executes both a multiplication and an addition.
        assert!(wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(3)])
            .is_none());
    }

    #[test]
    fn candidate_lists_shape() {
        let (g, wcg) = sample();
        let lists = wcg.op_candidate_lists();
        assert_eq!(lists.len(), g.len());
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list, &wcg.resources_for(OpId::new(i as u32)));
        }
    }

    #[test]
    fn display_mentions_every_resource() {
        let (_, wcg) = sample();
        let s = wcg.to_string();
        for r in wcg.resources() {
            assert!(s.contains(&r.to_string()));
        }
    }

    /// Runs `f` against the sample graph in both kernel modes and asserts the
    /// results agree.
    fn assert_modes_agree<T: PartialEq + std::fmt::Debug>(
        f: impl Fn(&WordlengthCompatibilityGraph) -> T,
    ) {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        assert_eq!(wcg.kernel_mode(), KernelMode::Bitset);
        let fast = f(&wcg);
        wcg.set_kernel_mode(KernelMode::Oracle);
        assert_eq!(fast, f(&wcg));
    }

    #[test]
    fn kernel_modes_agree_on_sample_queries() {
        let ids: Vec<OpId> = (0..4).map(OpId::new).collect();
        assert_modes_agree(|wcg| {
            let mut out = Vec::new();
            for a in &ids {
                for b in &ids {
                    out.push((
                        wcg.is_chain(&[*a, *b]),
                        wcg.cheapest_common_resource(&[*a, *b]),
                        (0..wcg.resources().len())
                            .map(|r| wcg.has_edge(*a, r))
                            .collect::<Vec<bool>>(),
                    ));
                }
            }
            out
        });
        assert_modes_agree(|wcg| {
            let mut out = Vec::new();
            for r in 0..wcg.resources().len() {
                out.push(wcg.max_chain(r, &[false; 4]));
                out.push(wcg.max_chain(r, &[true, false, true, false]));
            }
            out
        });
    }

    #[test]
    fn refine_agrees_across_kernel_modes() {
        let (_, mut fast) = sample();
        let (_, mut oracle) = sample();
        oracle.set_kernel_mode(KernelMode::Oracle);
        for i in 0..4 {
            let op = OpId::new(i);
            loop {
                let removed = fast.refine_op(op);
                assert_eq!(removed, oracle.refine_op(op));
                assert_eq!(fast.resources_for(op), oracle.resources_for(op));
                assert_eq!(fast.upper_bound_latency(op), oracle.upper_bound_latency(op));
                if removed == 0 {
                    break;
                }
            }
        }
    }

    #[test]
    fn mask_kernels_match_slice_kernels() {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        let words = wcg.op_mask_words();
        let sets: Vec<Vec<OpId>> = vec![
            vec![OpId::new(0)],
            vec![OpId::new(0), OpId::new(3)],
            vec![OpId::new(0), OpId::new(1)],
            vec![OpId::new(0), OpId::new(1), OpId::new(2), OpId::new(3)],
        ];
        for ops in &sets {
            let mut mask = vec![0u64; words];
            for o in ops {
                mask[o.index() / 64] |= 1 << (o.index() % 64);
            }
            assert_eq!(wcg.mask_is_chain(&mask), wcg.is_chain(ops));
            for r in 0..wcg.resources().len() {
                assert_eq!(
                    wcg.mask_covered_by(&mask, r),
                    ops.iter().all(|&o| wcg.has_edge(o, r))
                );
            }
        }
        assert!(wcg.mask_is_chain(&vec![0u64; words]));
    }

    #[test]
    fn kernel_mode_survives_rebuild() {
        let (g, mut wcg) = sample();
        wcg.set_kernel_mode(KernelMode::Oracle);
        wcg.rebuild(&g, &SonicCostModel::default());
        assert_eq!(wcg.kernel_mode(), KernelMode::Oracle);
    }

    #[test]
    fn schedule_attachment_uses_supplied_latencies() {
        let (g, mut wcg) = sample();
        // With native latencies the multiplications end earlier, changing
        // compatibility with the adder.
        let model = SonicCostModel::default();
        let native = OpLatencies::from_fn(&g, |op| model.native_latency(op.shape()));
        let schedule = asap(&g, &native);
        wcg.attach_schedule(&schedule, &native);
        assert!(wcg.compatible(OpId::new(0), OpId::new(3)));
    }
}
