//! The wordlength compatibility graph `G(V, E)` of Section 2.1.
//!
//! The vertex set is partitioned into operations `O` and resource-wordlength
//! types `R`; the edge set into
//!
//! * `H` — undirected *wordlength edges* `{o, r}`, meaning resource type `r`
//!   can execute operation `o`.  Initially these are exactly the
//!   [`covers`](mwl_model::ResourceType::covers) pairs; the allocator later
//!   deletes edges to refine wordlength (and therefore latency) information.
//! * `C` — directed *compatibility edges* `(o1, o2)`, meaning `o1` is
//!   scheduled to complete before `o2` starts.  `C` is a transitive
//!   orientation of the comparability subgraph `G'(O, C)`, so a maximum
//!   clique of time-compatible operations is a longest chain and can be
//!   found in linear time over a topological (start-time) order.
//!
//! [`WordlengthCompatibilityGraph`] owns the `H` edges, the per-resource
//! latency/area quantities derived from a [`CostModel`], and (once a schedule
//! is attached) the `C` edges.  It provides the queries the `DPAlloc`
//! heuristic needs: latency upper bounds `L_o`, `O(r)`, `S(o)`, maximum
//! chains of uncovered operations, and wordlength-refinement edge deletion.
//!
//! *Pipeline position:* built first from the raw graph, then iteratively
//! refined by the `DPAlloc` loop (`mwl_core`) — Sections 2.1–2.2 of the
//! paper.  See `docs/ARCHITECTURE.md` for the full map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use mwl_model::{Area, CostModel, Cycles, OpId, ResourceType, SequencingGraph};
use mwl_sched::{OpLatencies, Schedule};

/// Index of a resource-wordlength type within the graph's resource list.
pub type ResourceIndex = usize;

/// The wordlength compatibility graph.
///
/// # Examples
///
/// ```
/// use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
/// use mwl_wcg::WordlengthCompatibilityGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SequencingGraphBuilder::new();
/// let small = b.add_operation(OpShape::multiplier(8, 8));
/// let large = b.add_operation(OpShape::multiplier(16, 16));
/// let g = b.build()?;
///
/// let wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
/// // The small multiplication can run on the 8x8, 16x8 or 16x16 type...
/// assert_eq!(wcg.resources_for(small).len(), 3);
/// // ...so its latency upper bound is the latency of the 16x16 type.
/// assert_eq!(wcg.upper_bound_latency(small), 4);
/// assert_eq!(wcg.upper_bound_latency(large), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WordlengthCompatibilityGraph {
    /// Candidate resource-wordlength types (the vertex subset `R`).
    resources: Vec<ResourceType>,
    /// Latency of each resource type under the cost model.
    latencies: Vec<Cycles>,
    /// Area of each resource type under the cost model.
    areas: Vec<Area>,
    /// `H` edges: for every operation, the set of compatible resource
    /// indices.
    edges: Vec<BTreeSet<ResourceIndex>>,
    /// Schedule-derived start/end intervals used for the `C` edges
    /// (operation `o1` precedes `o2` iff `end(o1) <= start(o2)`).
    intervals: Option<Vec<(Cycles, Cycles)>>,
}

impl WordlengthCompatibilityGraph {
    /// Builds the initial graph for a sequencing graph under a cost model:
    /// the resource set is extracted from the operations and every `{o, r}`
    /// pair with `r.covers(o)` becomes an `H` edge.  No `C` edges exist until
    /// [`attach_schedule`](Self::attach_schedule) is called.
    #[must_use]
    pub fn new(graph: &SequencingGraph, cost: &dyn CostModel) -> Self {
        let resources = graph.extract_resource_types();
        Self::with_resources(graph, resources, cost)
    }

    /// Builds the graph with an explicitly supplied resource set.
    #[must_use]
    pub fn with_resources(
        graph: &SequencingGraph,
        resources: Vec<ResourceType>,
        cost: &dyn CostModel,
    ) -> Self {
        let latencies = resources.iter().map(|r| cost.latency(r)).collect();
        let areas = resources.iter().map(|r| cost.area(r)).collect();
        let edges = graph
            .operations()
            .iter()
            .map(|op| {
                resources
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.covers(op.shape()))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        WordlengthCompatibilityGraph {
            resources,
            latencies,
            areas,
            edges,
            intervals: None,
        }
    }

    /// Number of operations `|O|`.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.edges.len()
    }

    /// The resource-wordlength types `R`.
    #[must_use]
    pub fn resources(&self) -> &[ResourceType] {
        &self.resources
    }

    /// One resource type by index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn resource(&self, index: ResourceIndex) -> &ResourceType {
        &self.resources[index]
    }

    /// Latency of a resource type under the construction cost model.
    #[must_use]
    pub fn resource_latency(&self, index: ResourceIndex) -> Cycles {
        self.latencies[index]
    }

    /// Area of a resource type under the construction cost model.
    #[must_use]
    pub fn resource_area(&self, index: ResourceIndex) -> Area {
        self.areas[index]
    }

    /// The resource indices compatible with an operation (the `H`-neighbours
    /// of `o`, i.e. the candidates from which `S(o)` is drawn).
    #[must_use]
    pub fn resources_for(&self, op: OpId) -> Vec<ResourceIndex> {
        self.edges[op.index()].iter().copied().collect()
    }

    /// Returns `true` if the `H` edge `{o, r}` is present.
    #[must_use]
    pub fn has_edge(&self, op: OpId, resource: ResourceIndex) -> bool {
        self.edges[op.index()].contains(&resource)
    }

    /// The operations compatible with a resource type (`O(r)`).
    #[must_use]
    pub fn ops_for(&self, resource: ResourceIndex) -> Vec<OpId> {
        (0..self.num_ops())
            .map(|i| OpId::new(i as u32))
            .filter(|&o| self.has_edge(o, resource))
            .collect()
    }

    /// Total number of `H` edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(BTreeSet::len).sum()
    }

    /// Latency upper bound `L_o`: the latency of the slowest resource the
    /// operation is still compatible with.
    ///
    /// # Panics
    ///
    /// Panics if every `H` edge of the operation has been deleted; the
    /// allocator never removes the last edge of an operation.
    #[must_use]
    pub fn upper_bound_latency(&self, op: OpId) -> Cycles {
        self.edges[op.index()]
            .iter()
            .map(|&r| self.latencies[r])
            .max()
            .expect("operation retains at least one compatible resource")
    }

    /// Latency upper bounds for all operations, in a form directly usable by
    /// the schedulers.
    #[must_use]
    pub fn upper_bound_latencies(&self) -> OpLatencies {
        (0..self.num_ops())
            .map(|i| self.upper_bound_latency(OpId::new(i as u32)))
            .collect()
    }

    /// Deletes a single `H` edge.  Returns `true` if the edge existed.
    pub fn delete_edge(&mut self, op: OpId, resource: ResourceIndex) -> bool {
        self.edges[op.index()].remove(&resource)
    }

    /// Deletes every `H` edge `{op, r}` whose resource latency equals the
    /// operation's current upper bound `L_o` — the paper's wordlength
    /// refinement step.  The deletion is skipped (returning 0) when it would
    /// leave the operation with no compatible resource.
    ///
    /// Returns the number of edges removed.
    pub fn refine_op(&mut self, op: OpId) -> usize {
        let bound = self.upper_bound_latency(op);
        let slow: Vec<ResourceIndex> = self.edges[op.index()]
            .iter()
            .copied()
            .filter(|&r| self.latencies[r] == bound)
            .collect();
        if slow.len() == self.edges[op.index()].len() {
            // All remaining candidates share the same (minimal) latency:
            // nothing can be refined away without stranding the operation.
            let distinct: BTreeSet<Cycles> = self.edges[op.index()]
                .iter()
                .map(|&r| self.latencies[r])
                .collect();
            if distinct.len() <= 1 {
                return 0;
            }
        }
        let mut removed = 0;
        for r in slow {
            if self.edges[op.index()].len() == 1 {
                break;
            }
            if self.edges[op.index()].remove(&r) {
                removed += 1;
            }
        }
        removed
    }

    /// Returns `true` if the operation still has more than one distinct
    /// candidate latency, i.e. refinement could still lower its upper bound.
    #[must_use]
    pub fn refinable(&self, op: OpId) -> bool {
        let distinct: BTreeSet<Cycles> = self.edges[op.index()]
            .iter()
            .map(|&r| self.latencies[r])
            .collect();
        distinct.len() > 1
    }

    /// Attaches schedule information, creating the `C` edges: `(o1, o2) ∈ C`
    /// iff `o1` completes no later than `o2` starts under the given start
    /// times and latency table.
    pub fn attach_schedule(&mut self, schedule: &Schedule, latencies: &OpLatencies) {
        let intervals = (0..self.num_ops())
            .map(|i| {
                let op = OpId::new(i as u32);
                (schedule.start(op), schedule.end(op, latencies))
            })
            .collect();
        self.intervals = Some(intervals);
    }

    /// Removes the `C` edges (used when the allocator reschedules).
    pub fn detach_schedule(&mut self) {
        self.intervals = None;
    }

    /// Returns `true` if a schedule has been attached.
    #[must_use]
    pub fn has_schedule(&self) -> bool {
        self.intervals.is_some()
    }

    /// Returns `true` if the directed compatibility edge `(o1, o2)` exists:
    /// `o1` completes before (or exactly when) `o2` starts.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn compatible(&self, o1: OpId, o2: OpId) -> bool {
        let intervals = self
            .intervals
            .as_ref()
            .expect("attach_schedule must be called before compatibility queries");
        intervals[o1.index()].1 <= intervals[o2.index()].0
    }

    /// Returns `true` if the given operations are pairwise time-compatible,
    /// i.e. they form a clique of the comparability graph `G'(O, C)` and can
    /// therefore share one resource.
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn is_chain(&self, ops: &[OpId]) -> bool {
        let mut sorted: Vec<OpId> = ops.to_vec();
        let intervals = self
            .intervals
            .as_ref()
            .expect("attach_schedule must be called before compatibility queries");
        sorted.sort_by_key(|o| intervals[o.index()].0);
        sorted
            .windows(2)
            .all(|w| intervals[w[0].index()].1 <= intervals[w[1].index()].0)
    }

    /// Finds a maximum clique of *uncovered* operations within `O(r)`.
    ///
    /// Because `C` is a transitive orientation, a clique is a chain of
    /// operations whose execution intervals do not overlap; the maximum one
    /// is found by dynamic programming over operations sorted by start time.
    /// Returns the operations of the chain in execution order (possibly
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if no schedule is attached.
    #[must_use]
    pub fn max_chain(&self, resource: ResourceIndex, covered: &[bool]) -> Vec<OpId> {
        let intervals = self
            .intervals
            .as_ref()
            .expect("attach_schedule must be called before max_chain");
        let mut candidates: Vec<OpId> = self
            .ops_for(resource)
            .into_iter()
            .filter(|o| !covered[o.index()])
            .collect();
        candidates.sort_by_key(|o| (intervals[o.index()].0, intervals[o.index()].1, *o));
        let k = candidates.len();
        if k == 0 {
            return Vec::new();
        }
        // best[i]: length of the longest chain ending at candidate i.
        let mut best = vec![1usize; k];
        let mut prev: Vec<Option<usize>> = vec![None; k];
        for i in 0..k {
            for j in 0..i {
                let end_j = intervals[candidates[j].index()].1;
                let start_i = intervals[candidates[i].index()].0;
                if end_j <= start_i && best[j] + 1 > best[i] {
                    best[i] = best[j] + 1;
                    prev[i] = Some(j);
                }
            }
        }
        let mut tail = (0..k).max_by_key(|&i| best[i]).expect("k > 0");
        let mut chain = vec![candidates[tail]];
        while let Some(p) = prev[tail] {
            chain.push(candidates[p]);
            tail = p;
        }
        chain.reverse();
        chain
    }

    /// The cheapest resource (by area) able to execute every operation in the
    /// given set, if one exists.
    #[must_use]
    pub fn cheapest_common_resource(&self, ops: &[OpId]) -> Option<ResourceIndex> {
        (0..self.resources.len())
            .filter(|&r| ops.iter().all(|&o| self.has_edge(o, r)))
            .min_by_key(|&r| (self.areas[r], r))
    }

    /// Candidate lists in the shape expected by
    /// [`mwl_sched::scheduling_set`]: entry `i` lists the resource indices
    /// compatible with operation `i`.
    #[must_use]
    pub fn op_candidate_lists(&self) -> Vec<Vec<ResourceIndex>> {
        (0..self.num_ops())
            .map(|i| self.resources_for(OpId::new(i as u32)))
            .collect()
    }
}

impl fmt::Display for WordlengthCompatibilityGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wordlength compatibility graph: {} operations, {} resource types, {} H edges",
            self.num_ops(),
            self.resources.len(),
            self.num_edges()
        )?;
        for (i, r) in self.resources.iter().enumerate() {
            let ops: Vec<String> = self.ops_for(i).iter().map(ToString::to_string).collect();
            writeln!(
                f,
                "  r{i}: {r} (latency {}, area {}) <- [{}]",
                self.latencies[i],
                self.areas[i],
                ops.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
    use mwl_sched::{asap, OpLatencies};

    /// Two small and one large multiplication plus an adder.
    fn sample() -> (SequencingGraph, WordlengthCompatibilityGraph) {
        let mut b = SequencingGraphBuilder::new();
        let m_small = b.add_operation(OpShape::multiplier(8, 8));
        let m_mid = b.add_operation(OpShape::multiplier(12, 10));
        let m_big = b.add_operation(OpShape::multiplier(16, 16));
        let a = b.add_operation(OpShape::adder(20));
        b.add_dependency(m_small, a).unwrap();
        b.add_dependency(m_mid, a).unwrap();
        b.add_dependency(m_big, a).unwrap();
        let g = b.build().unwrap();
        let wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
        (g, wcg)
    }

    #[test]
    fn construction_creates_cover_edges() {
        let (g, wcg) = sample();
        assert_eq!(wcg.num_ops(), g.len());
        // Every op has at least one edge; the big multiplier covers all muls.
        for op in g.op_ids() {
            assert!(!wcg.resources_for(op).is_empty());
        }
        let big_idx = wcg
            .resources()
            .iter()
            .position(|r| *r == ResourceType::multiplier(16, 16))
            .unwrap();
        assert_eq!(wcg.ops_for(big_idx).len(), 3);
        // The adder type covers only the adder op.
        let adder_idx = wcg
            .resources()
            .iter()
            .position(|r| *r == ResourceType::adder(20))
            .unwrap();
        assert_eq!(wcg.ops_for(adder_idx), vec![OpId::new(3)]);
    }

    #[test]
    fn resource_costs_cached() {
        let (_, wcg) = sample();
        let model = SonicCostModel::default();
        for (i, r) in wcg.resources().iter().enumerate() {
            assert_eq!(wcg.resource_latency(i), model.latency(r));
            assert_eq!(wcg.resource_area(i), model.area(r));
            assert_eq!(wcg.resource(i), r);
        }
    }

    #[test]
    fn upper_bounds_use_slowest_compatible_resource() {
        let (_, wcg) = sample();
        // The 8x8 multiplication may be executed on the 16x16 multiplier:
        // upper bound = ceil(32/8) = 4 rather than its native 2.
        assert_eq!(wcg.upper_bound_latency(OpId::new(0)), 4);
        assert_eq!(wcg.upper_bound_latency(OpId::new(2)), 4);
        assert_eq!(wcg.upper_bound_latency(OpId::new(3)), 2);
        let all = wcg.upper_bound_latencies();
        assert_eq!(all.get(OpId::new(0)), 4);
    }

    #[test]
    fn refine_op_deletes_slowest_edges() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        let before = wcg.resources_for(op).len();
        assert!(wcg.refinable(op));
        let removed = wcg.refine_op(op);
        assert!(removed > 0);
        assert_eq!(wcg.resources_for(op).len(), before - removed);
        assert!(wcg.upper_bound_latency(op) < 4);
    }

    #[test]
    fn refine_op_never_strands_an_operation() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        // Refine until no longer possible.
        let mut guard = 0;
        while wcg.refinable(op) {
            assert!(wcg.refine_op(op) > 0);
            guard += 1;
            assert!(guard < 100, "refinement must terminate");
        }
        assert!(!wcg.resources_for(op).is_empty());
        assert_eq!(wcg.refine_op(op), 0);
        // The remaining candidates all have the native (minimum) latency.
        assert_eq!(wcg.upper_bound_latency(op), 2);
    }

    #[test]
    fn delete_edge_reports_presence() {
        let (_, mut wcg) = sample();
        let op = OpId::new(0);
        let r = wcg.resources_for(op)[0];
        assert!(wcg.has_edge(op, r));
        assert!(wcg.delete_edge(op, r));
        assert!(!wcg.delete_edge(op, r));
        assert!(!wcg.has_edge(op, r));
    }

    #[test]
    fn compatibility_follows_schedule() {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        assert!(!wcg.has_schedule());
        wcg.attach_schedule(&schedule, &lat);
        assert!(wcg.has_schedule());
        // The three multiplications start together (incompatible); each is
        // compatible with the adder that consumes them.
        assert!(!wcg.compatible(OpId::new(0), OpId::new(1)));
        assert!(wcg.compatible(OpId::new(0), OpId::new(3)));
        assert!(wcg.compatible(OpId::new(2), OpId::new(3)));
        assert!(!wcg.compatible(OpId::new(3), OpId::new(0)));
        assert!(wcg.is_chain(&[OpId::new(0), OpId::new(3)]));
        assert!(!wcg.is_chain(&[OpId::new(0), OpId::new(1)]));
        wcg.detach_schedule();
        assert!(!wcg.has_schedule());
    }

    #[test]
    fn max_chain_finds_longest_sequential_run() {
        // A chain of three 8x8 muls plus one parallel mul: the longest chain
        // on the shared multiplier type has length 3.
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::multiplier(8, 8));
        let z = b.add_operation(OpShape::multiplier(8, 8));
        let w = b.add_operation(OpShape::multiplier(8, 8));
        b.add_dependency(x, y).unwrap();
        b.add_dependency(y, z).unwrap();
        let g = b.build().unwrap();
        let mut wcg = WordlengthCompatibilityGraph::new(&g, &SonicCostModel::default());
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        let chain = wcg.max_chain(0, &[false; 4]);
        assert_eq!(chain, vec![x, y, z]);
        // Covered operations are skipped.
        let mut covered = vec![false; 4];
        covered[y.index()] = true;
        let chain = wcg.max_chain(0, &covered);
        assert_eq!(chain.len(), 2);
        assert!(!chain.contains(&y));
        let _ = w;
    }

    #[test]
    fn max_chain_empty_when_all_covered() {
        let (g, mut wcg) = sample();
        let lat = wcg.upper_bound_latencies();
        let schedule = asap(&g, &lat);
        wcg.attach_schedule(&schedule, &lat);
        let covered = vec![true; g.len()];
        assert!(wcg.max_chain(0, &covered).is_empty());
    }

    #[test]
    fn cheapest_common_resource() {
        let (_, wcg) = sample();
        // Small and mid multiplications share the 12x10 type (cheaper than
        // 16x16); all three multiplications only share the 16x16 type.
        let r = wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(1)])
            .unwrap();
        assert_eq!(*wcg.resource(r), ResourceType::multiplier(12, 10));
        let r = wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(1), OpId::new(2)])
            .unwrap();
        assert_eq!(*wcg.resource(r), ResourceType::multiplier(16, 16));
        // No resource executes both a multiplication and an addition.
        assert!(wcg
            .cheapest_common_resource(&[OpId::new(0), OpId::new(3)])
            .is_none());
    }

    #[test]
    fn candidate_lists_shape() {
        let (g, wcg) = sample();
        let lists = wcg.op_candidate_lists();
        assert_eq!(lists.len(), g.len());
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list, &wcg.resources_for(OpId::new(i as u32)));
        }
    }

    #[test]
    fn display_mentions_every_resource() {
        let (_, wcg) = sample();
        let s = wcg.to_string();
        for r in wcg.resources() {
            assert!(s.contains(&r.to_string()));
        }
    }

    #[test]
    fn schedule_attachment_uses_supplied_latencies() {
        let (g, mut wcg) = sample();
        // With native latencies the multiplications end earlier, changing
        // compatibility with the adder.
        let model = SonicCostModel::default();
        let native = OpLatencies::from_fn(&g, |op| model.native_latency(op.shape()));
        let schedule = asap(&g, &native);
        wcg.attach_schedule(&schedule, &native);
        assert!(wcg.compatible(OpId::new(0), OpId::new(3)));
    }
}
