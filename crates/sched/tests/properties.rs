//! Property-based tests of the scheduling substrate.

use std::collections::BTreeMap;

use proptest::prelude::*;

use mwl_model::{Cycles, OpId, ResourceClass, SequencingGraph, SonicCostModel};
use mwl_sched::{
    alap, asap, critical_path_length, minimum_cover, mobility, ListScheduler, OpLatencies,
    PerClassBound, SchedulePriority, SchedulingSetBound, Unbounded,
};
use mwl_tgff::{TgffConfig, TgffGenerator};

fn random_graph(ops: usize, seed: u64) -> SequencingGraph {
    TgffGenerator::new(TgffConfig::with_ops(ops.max(1)), seed).generate()
}

fn native(graph: &SequencingGraph) -> OpLatencies {
    let cost = SonicCostModel::default();
    OpLatencies::from_fn(graph, |op| {
        mwl_model::CostModel::native_latency(&cost, op.shape())
    })
}

fn classes(graph: &SequencingGraph) -> Vec<ResourceClass> {
    graph
        .operations()
        .iter()
        .map(|o| ResourceClass::for_kind(o.kind()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// ASAP is a valid schedule and no valid schedule starts any operation
    /// earlier; ALAP is valid and no later start is possible within the
    /// deadline.
    #[test]
    fn asap_alap_bracket_all_schedules(ops in 1usize..16, seed in any::<u64>(), slack in 0u32..6) {
        let graph = random_graph(ops, seed);
        let lat = native(&graph);
        let early = asap(&graph, &lat);
        prop_assert!(early.is_valid(&graph, &lat));
        let deadline = critical_path_length(&graph, &lat) + slack;
        let late = alap(&graph, &lat, deadline).unwrap();
        prop_assert!(late.is_valid(&graph, &lat));
        prop_assert!(late.makespan(&lat) <= deadline);
        for op in graph.op_ids() {
            prop_assert!(early.start(op) <= late.start(op));
        }
        // Mobility equals the gap between the two.
        let m = mobility(&graph, &lat, deadline).unwrap();
        for op in graph.op_ids() {
            prop_assert_eq!(m[op.index()], late.start(op) - early.start(op));
        }
    }

    /// List scheduling with unbounded resources equals ASAP; with per-class
    /// bounds it is valid, respects the bounds, and never beats ASAP.
    #[test]
    fn list_schedule_valid_and_bounded(
        ops in 1usize..14,
        seed in any::<u64>(),
        mul_bound in 1usize..4,
        add_bound in 1usize..4,
    ) {
        let graph = random_graph(ops, seed);
        let lat = native(&graph);
        let scheduler = ListScheduler::new(SchedulePriority::CriticalPath);

        let unbounded = scheduler.schedule(&graph, &lat, Unbounded::new()).unwrap();
        prop_assert_eq!(&unbounded, &asap(&graph, &lat));

        let bounds = BTreeMap::from([
            (ResourceClass::Multiplier, mul_bound),
            (ResourceClass::Adder, add_bound),
        ]);
        let constrained = scheduler
            .schedule(&graph, &lat, PerClassBound::new(classes(&graph), bounds.clone()))
            .unwrap();
        prop_assert!(constrained.is_valid(&graph, &lat));
        // Bound check: count concurrent ops per class at every step.
        let makespan = constrained.makespan(&lat);
        for step in 0..makespan {
            let mut counts: BTreeMap<ResourceClass, usize> = BTreeMap::new();
            for op in constrained.active_at(step, &lat) {
                *counts
                    .entry(ResourceClass::for_kind(graph.operation(op).kind()))
                    .or_insert(0) += 1;
            }
            for (class, count) in counts {
                prop_assert!(count <= bounds[&class]);
            }
        }
        // Resource constraints can only delay operations.
        for op in graph.op_ids() {
            prop_assert!(constrained.start(op) >= unbounded.start(op));
        }
    }

    /// The Eqn (3) constraint is at least as strict as Eqn (2): any schedule
    /// it produces also satisfies the per-class concurrency bound.
    #[test]
    fn eqn3_schedules_satisfy_eqn2(ops in 1usize..12, seed in any::<u64>(), bound in 1usize..4) {
        let graph = random_graph(ops, seed);
        let lat = native(&graph);
        let op_classes = classes(&graph);
        // Degenerate scheduling set: one member per class covering all its
        // operations (|S| = |Y|), where the paper states Eqn 3 == Eqn 2.
        let present: Vec<ResourceClass> = {
            let mut v: Vec<ResourceClass> = op_classes.clone();
            v.sort();
            v.dedup();
            v
        };
        let op_members: Vec<Vec<usize>> = op_classes
            .iter()
            .map(|c| vec![present.iter().position(|p| p == c).unwrap()])
            .collect();
        let bounds: BTreeMap<ResourceClass, usize> =
            present.iter().map(|&c| (c, bound)).collect();
        let scheduler = ListScheduler::new(SchedulePriority::CriticalPath);
        let eqn3 = scheduler.schedule(
            &graph,
            &lat,
            SchedulingSetBound::new(op_classes.clone(), op_members, present.clone(), bounds.clone()),
        );
        let eqn2 = scheduler.schedule(
            &graph,
            &lat,
            PerClassBound::new(op_classes.clone(), bounds.clone()),
        );
        // Both must agree on feasibility in the degenerate case, and the
        // Eqn 3 schedule must satisfy the Eqn 2 bound.
        match (eqn3, eqn2) {
            (Ok(s3), Ok(_)) => {
                prop_assert!(s3.is_valid(&graph, &lat));
                let makespan = s3.makespan(&lat);
                for step in 0..makespan {
                    let mut counts: BTreeMap<ResourceClass, usize> = BTreeMap::new();
                    for op in s3.active_at(step, &lat) {
                        *counts
                            .entry(ResourceClass::for_kind(graph.operation(op).kind()))
                            .or_insert(0) += 1;
                    }
                    for (_, count) in counts {
                        prop_assert!(count <= bound);
                    }
                }
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    /// Critical path length is monotone in latencies and invariant to
    /// uniformly scaling slack in ALAP deadlines.
    #[test]
    fn critical_path_monotone(ops in 1usize..14, seed in any::<u64>(), extra in 1u32..4) {
        let graph = random_graph(ops, seed);
        let lat = native(&graph);
        let inflated: OpLatencies = lat.as_slice().iter().map(|&l| l + extra).collect();
        prop_assert!(critical_path_length(&graph, &inflated) >= critical_path_length(&graph, &lat));
    }

    /// The minimum-cover solver always returns a cover of the coverable items
    /// and never more candidates than the greedy bound `H(n) * OPT`; for the
    /// exact regime it is no larger than the number of items.
    #[test]
    fn minimum_cover_is_a_cover(
        items in 1usize..12,
        sets in prop::collection::vec(prop::collection::vec(0usize..12, 0..6), 1..10),
    ) {
        let chosen = minimum_cover(items, &sets);
        for item in 0..items {
            let coverable = sets.iter().any(|s| s.contains(&item));
            if coverable {
                prop_assert!(chosen.iter().any(|&j| sets[j].contains(&item)));
            }
        }
        prop_assert!(chosen.len() <= sets.len());
        // Minimality sanity: removing any chosen set breaks the cover.
        for &skip in &chosen {
            let still_covered = (0..items)
                .filter(|i| sets.iter().any(|s| s.contains(i)))
                .all(|i| {
                    chosen
                        .iter()
                        .filter(|&&j| j != skip)
                        .any(|&j| sets[j].contains(&i))
                });
            prop_assert!(!still_covered || chosen.len() == 1);
        }
    }

    /// Schedule accessors are self-consistent.
    #[test]
    fn schedule_accessors_consistent(ops in 1usize..12, seed in any::<u64>()) {
        let graph = random_graph(ops, seed);
        let lat = native(&graph);
        let schedule = asap(&graph, &lat);
        let makespan = schedule.makespan(&lat);
        for op in graph.op_ids() {
            prop_assert_eq!(schedule.end(op, &lat), schedule.start(op) + lat.get(op));
            prop_assert!(schedule.end(op, &lat) <= makespan);
            // Each op is active exactly during its interval.
            for step in 0..makespan {
                let active = schedule.active_at(step, &lat).contains(&op);
                let inside = schedule.start(op) <= step && step < schedule.end(op, &lat);
                prop_assert_eq!(active, inside);
            }
        }
        let _: Vec<Cycles> = schedule.as_slice().to_vec();
        let _ = OpId::new(0);
    }
}
