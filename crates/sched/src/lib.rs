//! Scheduling for multiple-wordlength sequencing graphs.
//!
//! This crate implements the scheduling machinery of Section 2.2 of the DATE
//! 2001 paper:
//!
//! * [`asap`] / [`alap`] scheduling and [`critical_path_length`] /
//!   [`mobility`] for arbitrary per-operation latencies (the allocator calls
//!   these with latency *upper bounds* `L_o`);
//! * resource-constrained **list scheduling** ([`ListScheduler`]) that is
//!   generic over a [`ResourceConstraint`] strategy:
//!     * [`Unbounded`] — no resource limits (degenerates to ASAP),
//!     * [`PerClassBound`] — the standard constraint of Eqn (2),
//!     * [`SchedulingSetBound`] — the paper's wordlength-aware constraint of
//!       Eqn (3), which shares operations with more than one candidate
//!       scheduling-set member fractionally between those members;
//! * minimum-cardinality *scheduling set* computation ([`minimum_cover`],
//!   [`scheduling_set`]) — the subset `S ⊆ R` such that every operation can
//!   be executed by at least one member of `S`.
//!
//! The central output type is [`Schedule`], a start control step per
//! operation, with validation against precedence and latency constraints.
//!
//! *Pipeline position:* the "scheduling with incomplete wordlength
//! information" stage inside the `DPAlloc` loop (`mwl_core`) — Section 2.2
//! of the paper.  See `docs/ARCHITECTURE.md` for the full map.
//!
//! # Example
//!
//! ```
//! use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel, CostModel, ResourceType};
//! use mwl_sched::{asap, critical_path_length, OpLatencies};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SequencingGraphBuilder::new();
//! let m = b.add_operation(OpShape::multiplier(8, 8));
//! let a = b.add_operation(OpShape::adder(16));
//! b.add_dependency(m, a)?;
//! let g = b.build()?;
//!
//! let cost = SonicCostModel::default();
//! let lats = OpLatencies::from_fn(&g, |op| cost.native_latency(op.shape()));
//! let schedule = asap(&g, &lats);
//! assert_eq!(schedule.start(m), 0);
//! assert_eq!(schedule.start(a), 2);
//! assert_eq!(critical_path_length(&g, &lats), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod constraint;
mod cover;
mod error;
mod list;
mod schedule;
mod timing;

pub use constraint::{
    DenseSchedulingSetBound, PerClassBound, PerInstanceExclusive, ResourceConstraint,
    SchedulingSetBound, Unbounded,
};
pub use cover::{
    minimum_cover, scheduling_set, scheduling_set_into, scheduling_set_with_scratch, CoverScratch,
};
pub use error::SchedError;
pub use list::{ListScheduler, SchedScratch, SchedulePriority};
pub use schedule::{OpLatencies, Schedule};
pub use timing::{alap, asap, critical_path_length, mobility};
