//! Minimum-cardinality cover computation for the *scheduling set*.
//!
//! Before scheduling, the paper selects a minimum-cardinality subset
//! `S ⊆ R` of resource-wordlength types such that every operation has at
//! least one wordlength edge `{o, s}` with `s ∈ S`.  This is a set-cover
//! instance; it is solved exactly by branch and bound for the problem sizes
//! of the evaluation (≤ a few dozen operations) and by the classic greedy
//! heuristic beyond that.

use mwl_model::OpId;

/// Upper bound on the number of items for which the exact branch-and-bound
/// cover is attempted; larger instances fall back to the greedy heuristic.
const EXACT_COVER_ITEM_LIMIT: usize = 64;

/// Upper bound on the number of candidate sets for the exact solver.
const EXACT_COVER_CANDIDATE_LIMIT: usize = 28;

/// Computes a minimum-cardinality selection of candidate sets covering all
/// items `0..num_items`.
///
/// `candidates[j]` lists the items covered by candidate `j`.  Items that no
/// candidate covers are ignored (they cannot be covered by any selection).
/// The result is a sorted list of selected candidate indices; it is exact
/// (minimum cardinality) when the instance is small enough and a greedy
/// approximation otherwise.
///
/// # Examples
///
/// ```
/// use mwl_sched::minimum_cover;
/// // Two candidates each covering one item, one candidate covering both.
/// let cover = minimum_cover(2, &[vec![0], vec![1], vec![0, 1]]);
/// assert_eq!(cover, vec![2]);
/// ```
#[must_use]
pub fn minimum_cover(num_items: usize, candidates: &[Vec<usize>]) -> Vec<usize> {
    if num_items == 0 || candidates.is_empty() {
        return Vec::new();
    }
    // Restrict attention to coverable items.
    let mut coverable = vec![false; num_items];
    for set in candidates {
        for &item in set {
            if item < num_items {
                coverable[item] = true;
            }
        }
    }
    let items: Vec<usize> = (0..num_items).filter(|&i| coverable[i]).collect();
    if items.is_empty() {
        return Vec::new();
    }

    if items.len() > EXACT_COVER_ITEM_LIMIT {
        // Too many items for 64-bit masks: mask-free greedy.
        return greedy_cover_large(num_items, &items, candidates);
    }
    let (full, masks) = item_masks(&items, num_items, candidates);
    if candidates.len() <= EXACT_COVER_CANDIDATE_LIMIT {
        exact_cover(full, &masks)
    } else {
        greedy_cover(full, &masks)
    }
}

/// The classic greedy set-cover heuristic for instances with more items
/// than a 64-bit mask can hold: identical selection rule to
/// [`greedy_cover`] (most newly-covered items wins, ties to the
/// highest-indexed candidate), without the bitset.
fn greedy_cover_large(num_items: usize, items: &[usize], candidates: &[Vec<usize>]) -> Vec<usize> {
    let mut covered = vec![false; num_items];
    let mut relevant = vec![false; num_items];
    for &item in items {
        relevant[item] = true;
    }
    let new_coverage = |set: &Vec<usize>, covered: &[bool]| {
        set.iter()
            .filter(|&&item| item < num_items && relevant[item] && !covered[item])
            .count()
    };
    let mut remaining = items.len();
    let mut chosen: Vec<usize> = Vec::new();
    while remaining > 0 {
        let best = (0..candidates.len())
            .filter(|j| !chosen.contains(j))
            .max_by_key(|&j| new_coverage(&candidates[j], &covered));
        match best {
            Some(j) if new_coverage(&candidates[j], &covered) > 0 => {
                for &item in &candidates[j] {
                    if item < num_items && relevant[item] && !covered[item] {
                        covered[item] = true;
                        remaining -= 1;
                    }
                }
                chosen.push(j);
            }
            _ => break,
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Computes the scheduling set from per-operation candidate lists:
/// `op_candidates[i]` is the list of resource indices able to execute
/// operation `i`.  Returns the selected resource indices, sorted.
///
/// # Examples
///
/// ```
/// use mwl_sched::scheduling_set;
/// // op0 can use resources {0,2}, op1 only resource {2}: {2} covers both.
/// assert_eq!(scheduling_set(&[vec![0, 2], vec![2]]), vec![2]);
/// ```
#[must_use]
pub fn scheduling_set(op_candidates: &[Vec<usize>]) -> Vec<usize> {
    let num_resources = op_candidates
        .iter()
        .flat_map(|c| c.iter().copied())
        .max()
        .map_or(0, |m| m + 1);
    let mut covers: Vec<Vec<usize>> = vec![Vec::new(); num_resources];
    for (op, cands) in op_candidates.iter().enumerate() {
        for &r in cands {
            covers[r].push(op);
        }
    }
    minimum_cover(op_candidates.len(), &covers)
}

/// As [`scheduling_set`], but reads the per-resource operation lists
/// directly (the rows a [`WordlengthCompatibilityGraph`] maintains
/// incrementally) and writes the selected resource indices into a reusable
/// buffer — the allocation-light form used by the allocator's inner loop.
/// The selection is identical to
/// `scheduling_set(&per-op candidate lists)` on the transposed input.
///
/// [`WordlengthCompatibilityGraph`]: https://docs.rs/mwl_wcg
pub fn scheduling_set_into(num_ops: usize, covers: &[Vec<OpId>], out: &mut Vec<usize>) {
    scheduling_set_with_scratch(num_ops, covers, &mut CoverScratch::default(), out);
}

/// Reusable buffers for [`scheduling_set_with_scratch`].
#[derive(Debug, Default)]
pub struct CoverScratch {
    coverable: Vec<bool>,
    bit: Vec<u32>,
    masks: Vec<u64>,
}

/// As [`scheduling_set_into`], reusing the caller's buffers — the form the
/// allocator's inner loop runs once per refinement iteration.
pub fn scheduling_set_with_scratch(
    num_ops: usize,
    covers: &[Vec<OpId>],
    scratch: &mut CoverScratch,
    out: &mut Vec<usize>,
) {
    out.clear();
    if num_ops == 0 || covers.is_empty() {
        return;
    }
    let CoverScratch {
        coverable,
        bit,
        masks,
    } = scratch;
    coverable.clear();
    coverable.resize(num_ops, false);
    for set in covers {
        for &op in set {
            if op.index() < num_ops {
                coverable[op.index()] = true;
            }
        }
    }
    // Bit position per op: its rank among the coverable ops, exactly the
    // position the legacy path assigns in its `items` list.
    bit.clear();
    bit.resize(num_ops, u32::MAX);
    let mut num_items = 0u32;
    for (i, &c) in coverable.iter().enumerate() {
        if c {
            bit[i] = num_items;
            num_items += 1;
        }
    }
    if num_items == 0 {
        return;
    }
    if num_items as usize > EXACT_COVER_ITEM_LIMIT {
        // Mirror the legacy path byte for byte on oversized instances.
        let lists: Vec<Vec<usize>> = covers
            .iter()
            .map(|set| set.iter().map(|o| o.index()).collect())
            .collect();
        out.extend_from_slice(&minimum_cover(num_ops, &lists));
        return;
    }
    let full: u64 = if num_items == 64 {
        u64::MAX
    } else {
        (1u64 << num_items) - 1
    };
    masks.clear();
    masks.extend(covers.iter().map(|set| {
        let mut m = 0u64;
        for &op in set {
            if op.index() < num_ops {
                m |= 1u64 << bit[op.index()];
            }
        }
        m
    }));
    let chosen = if covers.len() <= EXACT_COVER_CANDIDATE_LIMIT {
        exact_cover(full, masks)
    } else {
        greedy_cover(full, masks)
    };
    out.extend_from_slice(&chosen);
}

fn item_masks(items: &[usize], num_items: usize, candidates: &[Vec<usize>]) -> (u64, Vec<u64>) {
    // Bit position of every item, O(1) per lookup.
    let mut bit = vec![u32::MAX; num_items];
    for (pos, &item) in items.iter().enumerate() {
        bit[item] = pos as u32;
    }
    let full: u64 = if items.len() == 64 {
        u64::MAX
    } else {
        (1u64 << items.len()) - 1
    };
    let masks = candidates
        .iter()
        .map(|set| {
            let mut m = 0u64;
            for &item in set {
                if item < num_items && bit[item] != u32::MAX {
                    m |= 1u64 << bit[item];
                }
            }
            m
        })
        .collect();
    (full, masks)
}

fn greedy_cover(full: u64, masks: &[u64]) -> Vec<usize> {
    let mut covered = 0u64;
    let mut chosen = Vec::new();
    while covered != full {
        let best = (0..masks.len())
            .filter(|&j| !chosen.contains(&j))
            .max_by_key(|&j| (masks[j] & !covered).count_ones());
        match best {
            Some(j) if (masks[j] & !covered) != 0 => {
                covered |= masks[j];
                chosen.push(j);
            }
            _ => break,
        }
    }
    chosen.sort_unstable();
    chosen
}

fn exact_cover(full: u64, masks: &[u64]) -> Vec<usize> {
    // Greedy solution as the initial incumbent / upper bound.
    let mut best = greedy_cover(full, masks);
    let mut best_len = best.len();

    // Order candidates by decreasing coverage for better pruning.
    let mut order: Vec<usize> = (0..masks.len()).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(masks[j].count_ones()));

    /// Immutable search context shared by every branch-and-bound node.
    struct Search<'a> {
        order: &'a [usize],
        masks: &'a [u64],
        full: u64,
    }

    fn recurse(
        s: &Search<'_>,
        pos: usize,
        covered: u64,
        chosen: &mut Vec<usize>,
        best: &mut Vec<usize>,
        best_len: &mut usize,
    ) {
        let Search { order, masks, full } = *s;
        if covered == full {
            if chosen.len() < *best_len {
                *best_len = chosen.len();
                *best = chosen.clone();
            }
            return;
        }
        if chosen.len() + 1 >= *best_len {
            // Even one more candidate cannot beat the incumbent unless it
            // finishes the cover; handled below by trying each candidate.
        }
        if pos >= order.len() {
            return;
        }
        // Lower bound: remaining items / largest remaining candidate size.
        let remaining = (full & !covered).count_ones() as usize;
        let largest = order[pos..]
            .iter()
            .map(|&j| (masks[j] & !covered).count_ones() as usize)
            .max()
            .unwrap_or(0);
        if largest == 0 {
            return;
        }
        let lower = remaining.div_ceil(largest);
        if chosen.len() + lower >= *best_len {
            return;
        }
        // Branch: pick an uncovered item and try every candidate covering it.
        let uncovered_bit = (full & !covered).trailing_zeros();
        for &j in &order[pos..] {
            if masks[j] & (1u64 << uncovered_bit) == 0 {
                continue;
            }
            chosen.push(j);
            recurse(s, pos, covered | masks[j], chosen, best, best_len);
            chosen.pop();
        }
    }

    let search = Search {
        order: &order,
        masks,
        full,
    };
    let mut chosen = Vec::new();
    recurse(&search, 0, 0, &mut chosen, &mut best, &mut best_len);
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(num_items: usize, candidates: &[Vec<usize>], chosen: &[usize]) -> bool {
        (0..num_items).all(|item| {
            // item must be covered unless no candidate covers it at all
            let coverable = candidates.iter().any(|c| c.contains(&item));
            !coverable || chosen.iter().any(|&j| candidates[j].contains(&item))
        })
    }

    #[test]
    fn empty_inputs() {
        assert!(minimum_cover(0, &[vec![0]]).is_empty());
        assert!(minimum_cover(3, &[]).is_empty());
        assert!(scheduling_set(&[]).is_empty());
    }

    #[test]
    fn single_candidate_covering_everything() {
        let c = vec![vec![0, 1, 2, 3]];
        assert_eq!(minimum_cover(4, &c), vec![0]);
    }

    #[test]
    fn prefers_one_big_set_over_two_small() {
        let c = vec![vec![0], vec![1], vec![0, 1]];
        assert_eq!(minimum_cover(2, &c), vec![2]);
    }

    #[test]
    fn exact_beats_greedy_on_adversarial_instance() {
        // Classic instance where greedy picks 3 sets but the optimum is 2:
        // items 0..=5; optimal = {0,1,2} and {3,4,5};
        // greedy is lured by {2,3,4,5}... construct so greedy takes the big
        // set first then needs two more.
        let c = vec![
            vec![0, 1, 2],    // A (optimal)
            vec![3, 4, 5],    // B (optimal)
            vec![1, 2, 3, 4], // C (greedy bait)
            vec![0],
            vec![5],
        ];
        let cover = minimum_cover(6, &c);
        assert_eq!(cover.len(), 2);
        assert!(covers_all(6, &c, &cover));
    }

    #[test]
    fn uncoverable_items_are_ignored() {
        let c = vec![vec![0]];
        let cover = minimum_cover(3, &c);
        assert_eq!(cover, vec![0]);
    }

    #[test]
    fn scheduling_set_from_op_candidates() {
        // Three ops; resource 1 covers ops 0 and 1; resource 0 covers op 2.
        let ops = vec![vec![0, 1], vec![1], vec![0]];
        let s = scheduling_set(&ops);
        assert_eq!(s, vec![0, 1]);
    }

    #[test]
    fn scheduling_set_single_resource_suffices() {
        // All ops can use resource 3 (the biggest): scheduling set = {3}.
        let ops = vec![vec![0, 3], vec![1, 3], vec![2, 3]];
        assert_eq!(scheduling_set(&ops), vec![3]);
    }

    /// The into-variant over per-resource op lists must select exactly what
    /// `scheduling_set` selects over the transposed per-op candidate lists.
    #[test]
    fn scheduling_set_into_matches_legacy_on_random_instances() {
        let mut state = 0xdead_beefu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let mut out = Vec::new();
        for _ in 0..40 {
            let num_ops = 1 + next(12) as usize;
            let num_resources = 1 + next(8) as usize;
            let op_candidates: Vec<Vec<usize>> = (0..num_ops)
                .map(|_| (0..num_resources).filter(|_| next(3) != 0).collect())
                .collect();
            let mut covers: Vec<Vec<OpId>> = vec![Vec::new(); num_resources];
            for (op, cands) in op_candidates.iter().enumerate() {
                for &r in cands {
                    covers[r].push(OpId::new(op as u32));
                }
            }
            let legacy = scheduling_set(&op_candidates);
            scheduling_set_into(num_ops, &covers, &mut out);
            assert_eq!(out, legacy, "candidates: {op_candidates:?}");
        }
        // Degenerate shapes.
        scheduling_set_into(0, &[vec![OpId::new(0)]], &mut out);
        assert!(out.is_empty());
        scheduling_set_into(3, &[], &mut out);
        assert!(out.is_empty());
        scheduling_set_into(2, &[vec![], vec![]], &mut out);
        assert!(out.is_empty());
    }

    /// More than 64 coverable items exceeds the 64-bit mask representation:
    /// the mask-free greedy must take over and still produce a valid cover
    /// (this used to shift-overflow).
    #[test]
    fn more_than_64_items_use_the_maskfree_greedy() {
        let num_items = 70;
        let mut candidates: Vec<Vec<usize>> = (0..num_items).map(|i| vec![i]).collect();
        candidates.push((0..num_items).collect());
        let cover = minimum_cover(num_items, &candidates);
        assert!(covers_all(num_items, &candidates, &cover));
        assert_eq!(cover, vec![num_items]); // the big candidate wins
                                            // Two medium sets beat seventy singletons.
        let split: Vec<Vec<usize>> = {
            let mut c: Vec<Vec<usize>> = (0..num_items).map(|i| vec![i]).collect();
            c.push((0..40).collect());
            c.push((40..num_items).collect());
            c
        };
        let cover = minimum_cover(num_items, &split);
        assert!(covers_all(num_items, &split, &cover));
        assert_eq!(cover, vec![num_items, num_items + 1]);
        // The OpId entry point takes the same fallback.
        let mut covers: Vec<Vec<OpId>> = vec![Vec::new(); split.len()];
        for (j, set) in split.iter().enumerate() {
            covers[j] = set.iter().map(|&i| OpId::new(i as u32)).collect();
        }
        let mut out = Vec::new();
        scheduling_set_into(num_items, &covers, &mut out);
        assert_eq!(out, cover);
    }

    #[test]
    fn greedy_path_used_for_large_instances() {
        // More candidates than the exact limit: still returns a valid cover.
        let num_items = 40;
        let mut candidates: Vec<Vec<usize>> = (0..num_items).map(|i| vec![i]).collect();
        candidates.push((0..num_items).collect());
        let cover = minimum_cover(num_items, &candidates);
        assert!(covers_all(num_items, &candidates, &cover));
        assert_eq!(cover, vec![num_items]); // the big candidate wins
    }

    #[test]
    fn exact_matches_brute_force_on_small_random_instances() {
        // Deterministic pseudo-random small instances; compare with brute force.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..30 {
            let items = 6;
            let nsets = 6;
            let candidates: Vec<Vec<usize>> = (0..nsets)
                .map(|_| (0..items).filter(|_| next() % 3 == 0).collect())
                .collect();
            let chosen = minimum_cover(items, &candidates);
            // Brute force minimal cardinality over coverable items.
            let coverable: Vec<usize> = (0..items)
                .filter(|&i| candidates.iter().any(|c| c.contains(&i)))
                .collect();
            let mut best = usize::MAX;
            for mask in 0u32..(1 << nsets) {
                let sel: Vec<usize> = (0..nsets).filter(|&j| mask & (1 << j) != 0).collect();
                if coverable
                    .iter()
                    .all(|&i| sel.iter().any(|&j| candidates[j].contains(&i)))
                {
                    best = best.min(sel.len());
                }
            }
            if best == usize::MAX {
                assert!(chosen.is_empty());
            } else {
                assert_eq!(chosen.len(), best, "candidates: {candidates:?}");
            }
            assert!(covers_all(items, &candidates, &chosen));
        }
    }
}
