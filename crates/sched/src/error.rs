//! Error type for scheduling.

use std::error::Error;
use std::fmt;

use mwl_model::{Cycles, OpId};

/// Errors produced by the schedulers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The requested deadline is shorter than the critical path, so no
    /// schedule can exist regardless of resources.
    DeadlineTooTight {
        /// The requested overall latency constraint.
        deadline: Cycles,
        /// The minimum achievable latency (critical path length).
        critical_path: Cycles,
    },
    /// The resource constraint rejects an operation at every control step,
    /// so list scheduling cannot make progress.
    InfeasibleResourceBound {
        /// The first operation that could not be placed.
        op: OpId,
    },
    /// A latency table does not match the graph it is used with.
    LatencyTableMismatch {
        /// Number of operations in the graph.
        graph_ops: usize,
        /// Number of entries in the latency table.
        table_ops: usize,
    },
    /// An operation has a zero latency entry, which the schedulers do not
    /// support (every operation must occupy at least one control step).
    ZeroLatency(OpId),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::DeadlineTooTight {
                deadline,
                critical_path,
            } => write!(
                f,
                "deadline {deadline} is shorter than the critical path of {critical_path} steps"
            ),
            SchedError::InfeasibleResourceBound { op } => {
                write!(f, "resource constraint permanently rejects operation {op}")
            }
            SchedError::LatencyTableMismatch {
                graph_ops,
                table_ops,
            } => write!(
                f,
                "latency table has {table_ops} entries but the graph has {graph_ops} operations"
            ),
            SchedError::ZeroLatency(op) => {
                write!(f, "operation {op} has zero latency")
            }
        }
    }
}

impl Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SchedError::DeadlineTooTight {
            deadline: 3,
            critical_path: 7,
        };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('7'));
        let e = SchedError::InfeasibleResourceBound { op: OpId::new(4) };
        assert!(e.to_string().contains("o4"));
        let e = SchedError::LatencyTableMismatch {
            graph_ops: 5,
            table_ops: 2,
        };
        assert!(e.to_string().contains('5'));
        let e = SchedError::ZeroLatency(OpId::new(1));
        assert!(e.to_string().contains("o1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedError>();
    }
}
