//! Resource-constrained list scheduling.
//!
//! This is the scheduling engine the paper's `DPAlloc` heuristic (Section
//! 2.2) invokes on every refinement iteration: operations are visited in
//! priority order (critical-path based by default) and placed at the
//! earliest control step at which the active [`ResourceConstraint`] — the
//! per-class bound of Eqn (2) or the scheduling-set constraint of Eqn (3) —
//! still admits them.

use mwl_model::{Cycles, OpId, SequencingGraph};
use serde::{Deserialize, Serialize};

use crate::constraint::ResourceConstraint;
use crate::error::SchedError;
use crate::schedule::{OpLatencies, Schedule};

/// Ready-operation ordering used by the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedulePriority {
    /// Order ready operations by decreasing length of their longest path to
    /// a sink (classic critical-path list scheduling).  Ties are broken by
    /// operation id for determinism.
    #[default]
    CriticalPath,
    /// Order ready operations by their id (insertion order).  Mainly useful
    /// for tests and ablations.
    InputOrder,
}

/// Resource-constrained list scheduler.
///
/// The scheduler walks control steps in increasing order; at every step it
/// offers the ready operations (all predecessors finished) to the
/// [`ResourceConstraint`] in priority order and places those that are
/// admitted.  Time then advances to the next completion event.
///
/// # Examples
///
/// ```
/// use mwl_model::{OpShape, SequencingGraphBuilder, ResourceClass};
/// use mwl_sched::{ListScheduler, OpLatencies, PerClassBound, SchedulePriority};
/// use std::collections::BTreeMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = SequencingGraphBuilder::new();
/// let x = b.add_operation(OpShape::multiplier(8, 8));
/// let y = b.add_operation(OpShape::multiplier(8, 8));
/// let g = b.build()?;
/// let lats = OpLatencies::uniform(&g, 2);
///
/// // One multiplier: the two independent multiplications serialise.
/// let classes = g.operations().iter()
///     .map(|o| ResourceClass::for_kind(o.kind()))
///     .collect();
/// let constraint = PerClassBound::new(classes, BTreeMap::from([(ResourceClass::Multiplier, 1)]));
/// let schedule = ListScheduler::new(SchedulePriority::CriticalPath)
///     .schedule(&g, &lats, constraint)?;
/// assert_eq!(schedule.makespan(&lats), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ListScheduler {
    priority: SchedulePriority,
}

/// Reusable buffers for [`ListScheduler::schedule_with_scratch`], so the
/// allocator's refinement loop can run one full list schedule per iteration
/// without reallocating its working tables.
#[derive(Debug, Default)]
pub struct SchedScratch {
    start: Vec<Option<Cycles>>,
    priority: Vec<Cycles>,
    ready: Vec<OpId>,
    dfs_state: Vec<u8>,
    dfs_stack: Vec<OpId>,
}

impl SchedScratch {
    /// Creates an empty scratch; buffers grow to fit on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ListScheduler {
    /// Creates a list scheduler with the given ready-list priority.
    #[must_use]
    pub fn new(priority: SchedulePriority) -> Self {
        ListScheduler { priority }
    }

    /// The configured priority.
    #[must_use]
    pub fn priority(&self) -> SchedulePriority {
        self.priority
    }

    /// Schedules the graph under the given latencies and resource constraint.
    ///
    /// # Errors
    ///
    /// * [`SchedError::LatencyTableMismatch`] / [`SchedError::ZeroLatency`]
    ///   if the latency table is inconsistent with the graph;
    /// * [`SchedError::InfeasibleResourceBound`] if some operation can never
    ///   be admitted by the constraint.
    pub fn schedule<C: ResourceConstraint>(
        &self,
        graph: &SequencingGraph,
        latencies: &OpLatencies,
        constraint: C,
    ) -> Result<Schedule, SchedError> {
        self.schedule_with_scratch(graph, latencies, constraint, &mut SchedScratch::new())
    }

    /// As [`schedule`](Self::schedule), but reuses the caller's working
    /// buffers — the steady-state form used by the allocator's inner loop.
    /// Produces the identical [`Schedule`] for identical inputs; only the
    /// allocation behaviour differs.  Pass `&mut constraint` to keep the
    /// constraint's own buffers with the caller too.
    ///
    /// # Errors
    ///
    /// Same conditions as [`schedule`](Self::schedule).
    pub fn schedule_with_scratch<C: ResourceConstraint>(
        &self,
        graph: &SequencingGraph,
        latencies: &OpLatencies,
        mut constraint: C,
        scratch: &mut SchedScratch,
    ) -> Result<Schedule, SchedError> {
        latencies.validate(graph)?;
        let n = graph.len();
        let SchedScratch {
            start,
            priority,
            ready,
            dfs_state,
            dfs_stack,
        } = scratch;
        self.priority_values_into(graph, latencies, priority, dfs_state, dfs_stack);
        start.clear();
        start.resize(n, None);

        let mut scheduled = 0usize;
        let mut step: Cycles = 0;

        while scheduled < n {
            // Ready operations: unscheduled, all predecessors finished by `step`.
            ready.clear();
            ready.extend(
                graph
                    .op_ids()
                    .filter(|&o| start[o.index()].is_none())
                    .filter(|&o| {
                        graph.predecessors(o).iter().all(|&p| {
                            start[p.index()]
                                .map(|s| s + latencies.get(p) <= step)
                                .unwrap_or(false)
                        })
                    }),
            );
            self.sort_ready(ready, priority);

            let mut placed_any = false;
            for &op in ready.iter() {
                let lat = latencies.get(op);
                if constraint.admits(op, step, lat) {
                    constraint.commit(op, step, lat);
                    start[op.index()] = Some(step);
                    scheduled += 1;
                    placed_any = true;
                }
            }

            if scheduled == n {
                break;
            }

            // Advance to the next event: the earliest completion strictly
            // after `step`, or `step + 1` if something was just placed (its
            // completion is such an event anyway).
            let next_event = graph
                .op_ids()
                .filter_map(|o| start[o.index()].map(|s| s + latencies.get(o)))
                .filter(|&e| e > step)
                .min();

            match next_event {
                Some(e) => step = e,
                None => {
                    if placed_any {
                        step += 1;
                        continue;
                    }
                    let blocked = ready
                        .iter()
                        .copied()
                        .find(|&o| !constraint.admissible_at_all(o, latencies.get(o)))
                        .or_else(|| ready.first().copied())
                        .or_else(|| graph.op_ids().find(|&o| start[o.index()].is_none()))
                        .expect("some operation remains unscheduled");
                    return Err(SchedError::InfeasibleResourceBound { op: blocked });
                }
            }
        }

        Ok(Schedule::from_vec(
            start.iter().map(|s| s.unwrap_or(0)).collect(),
        ))
    }

    /// Longest path from each operation to any sink, including the
    /// operation's own latency (classic list-scheduling urgency metric).
    ///
    /// Computed by an iterative post-order walk over the successor lists so
    /// the per-iteration scheduling loop never materialises a topological
    /// order.  In a DAG a gray (expanded, unfinished) node can never be a
    /// successor of the node being finished — that would close a cycle — so
    /// every successor's value is final when read.
    fn priority_values_into(
        &self,
        graph: &SequencingGraph,
        latencies: &OpLatencies,
        value: &mut Vec<Cycles>,
        state: &mut Vec<u8>,
        stack: &mut Vec<OpId>,
    ) {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        value.clear();
        value.resize(graph.len(), 0);
        state.clear();
        state.resize(graph.len(), WHITE);
        for root in graph.op_ids() {
            if state[root.index()] != WHITE {
                continue;
            }
            stack.push(root);
            while let Some(&v) = stack.last() {
                match state[v.index()] {
                    WHITE => {
                        state[v.index()] = GRAY;
                        stack.extend(
                            graph
                                .successors(v)
                                .iter()
                                .copied()
                                .filter(|&s| state[s.index()] == WHITE),
                        );
                    }
                    GRAY => {
                        stack.pop();
                        let tail = graph
                            .successors(v)
                            .iter()
                            .map(|&s| value[s.index()])
                            .max()
                            .unwrap_or(0);
                        value[v.index()] = tail + latencies.get(v);
                        state[v.index()] = 2; // black: finished
                    }
                    _ => {
                        // A duplicate of an already-finished node (pushed
                        // white by two parents before its first expansion).
                        stack.pop();
                    }
                }
            }
        }
    }

    fn sort_ready(&self, ready: &mut [OpId], priority: &[Cycles]) {
        match self.priority {
            SchedulePriority::CriticalPath => {
                ready.sort_by_key(|&o| (std::cmp::Reverse(priority[o.index()]), o));
            }
            SchedulePriority::InputOrder => ready.sort_unstable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{PerClassBound, SchedulingSetBound, Unbounded};
    use crate::timing::asap;
    use mwl_model::{OpShape, ResourceClass, SequencingGraphBuilder};
    use std::collections::BTreeMap;

    fn classes_of(graph: &SequencingGraph) -> Vec<ResourceClass> {
        graph
            .operations()
            .iter()
            .map(|o| ResourceClass::for_kind(o.kind()))
            .collect()
    }

    fn parallel_muls(n: usize) -> SequencingGraph {
        let mut b = SequencingGraphBuilder::new();
        for _ in 0..n {
            b.add_operation(OpShape::multiplier(8, 8));
        }
        b.build().unwrap()
    }

    #[test]
    fn unbounded_equals_asap() {
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::adder(8));
        let z = b.add_operation(OpShape::adder(8));
        b.add_dependency(x, y).unwrap();
        b.add_dependency(x, z).unwrap();
        let g = b.build().unwrap();
        let lat = OpLatencies::from_vec(vec![2, 2, 2]);
        let s = ListScheduler::default()
            .schedule(&g, &lat, Unbounded::new())
            .unwrap();
        assert_eq!(s, asap(&g, &lat));
    }

    #[test]
    fn single_resource_serialises_independent_ops() {
        let g = parallel_muls(4);
        let lat = OpLatencies::uniform(&g, 3);
        let constraint = PerClassBound::new(
            classes_of(&g),
            BTreeMap::from([(ResourceClass::Multiplier, 1)]),
        );
        let s = ListScheduler::default()
            .schedule(&g, &lat, constraint)
            .unwrap();
        assert!(s.is_valid(&g, &lat));
        assert_eq!(s.makespan(&lat), 12);
        // No two operations overlap.
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                assert!(!s.overlaps(OpId::new(i), OpId::new(j), &lat));
            }
        }
    }

    #[test]
    fn two_resources_halve_the_makespan() {
        let g = parallel_muls(4);
        let lat = OpLatencies::uniform(&g, 3);
        let constraint = PerClassBound::new(
            classes_of(&g),
            BTreeMap::from([(ResourceClass::Multiplier, 2)]),
        );
        let s = ListScheduler::default()
            .schedule(&g, &lat, constraint)
            .unwrap();
        assert_eq!(s.makespan(&lat), 6);
    }

    #[test]
    fn zero_bound_is_reported_infeasible() {
        let g = parallel_muls(2);
        let lat = OpLatencies::uniform(&g, 1);
        let constraint = PerClassBound::new(
            classes_of(&g),
            BTreeMap::from([(ResourceClass::Multiplier, 0)]),
        );
        let err = ListScheduler::default()
            .schedule(&g, &lat, constraint)
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleResourceBound { .. }));
    }

    #[test]
    fn priority_respects_critical_path() {
        // Two chains: a long chain (a -> b) and a single short op c; with one
        // adder the long chain's head should be scheduled first.
        let mut b = SequencingGraphBuilder::new();
        let a = b.add_operation(OpShape::adder(8));
        let b2 = b.add_operation(OpShape::adder(8));
        let c = b.add_operation(OpShape::adder(8));
        b.add_dependency(a, b2).unwrap();
        let g = b.build().unwrap();
        let lat = OpLatencies::uniform(&g, 2);
        let constraint =
            PerClassBound::new(classes_of(&g), BTreeMap::from([(ResourceClass::Adder, 1)]));
        let s = ListScheduler::new(SchedulePriority::CriticalPath)
            .schedule(&g, &lat, constraint)
            .unwrap();
        assert_eq!(s.start(a), 0);
        assert!(s.start(c) >= 2);
        assert_eq!(s.makespan(&lat), 6);
    }

    #[test]
    fn input_order_priority_is_deterministic() {
        let g = parallel_muls(3);
        let lat = OpLatencies::uniform(&g, 2);
        let mk = || {
            PerClassBound::new(
                classes_of(&g),
                BTreeMap::from([(ResourceClass::Multiplier, 1)]),
            )
        };
        let s1 = ListScheduler::new(SchedulePriority::InputOrder)
            .schedule(&g, &lat, mk())
            .unwrap();
        let s2 = ListScheduler::new(SchedulePriority::InputOrder)
            .schedule(&g, &lat, mk())
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(s1.start(OpId::new(0)), 0);
        assert_eq!(s1.start(OpId::new(1)), 2);
        assert_eq!(s1.start(OpId::new(2)), 4);
    }

    #[test]
    fn mixed_classes_are_constrained_independently() {
        let mut b = SequencingGraphBuilder::new();
        let m1 = b.add_operation(OpShape::multiplier(8, 8));
        let m2 = b.add_operation(OpShape::multiplier(8, 8));
        let a1 = b.add_operation(OpShape::adder(8));
        let a2 = b.add_operation(OpShape::adder(8));
        let g = b.build().unwrap();
        let lat = OpLatencies::from_vec(vec![2, 2, 2, 2]);
        let constraint = PerClassBound::new(
            classes_of(&g),
            BTreeMap::from([(ResourceClass::Multiplier, 1), (ResourceClass::Adder, 1)]),
        );
        let s = ListScheduler::default()
            .schedule(&g, &lat, constraint)
            .unwrap();
        // Multipliers serialise among themselves, adders among themselves,
        // but a multiplier and an adder may overlap.
        assert!(!s.overlaps(m1, m2, &lat));
        assert!(!s.overlaps(a1, a2, &lat));
        assert_eq!(s.makespan(&lat), 4);
    }

    #[test]
    fn eqn3_constraint_schedules_under_wordlength_splits() {
        // Three multiplications; o0 can only use the small member, o1 only
        // the large one, o2 either.  With a bound of 2 multipliers this is
        // schedulable; with 1 it is not.
        let g = parallel_muls(3);
        let lat = OpLatencies::uniform(&g, 2);
        let member_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let op_members = vec![vec![0], vec![1], vec![0, 1]];
        let mk = |bound: usize| {
            SchedulingSetBound::new(
                classes_of(&g),
                op_members.clone(),
                member_classes.clone(),
                BTreeMap::from([(ResourceClass::Multiplier, bound)]),
            )
        };
        let ok = ListScheduler::default().schedule(&g, &lat, mk(2)).unwrap();
        assert!(ok.is_valid(&g, &lat));
        let err = ListScheduler::default()
            .schedule(&g, &lat, mk(1))
            .unwrap_err();
        assert!(matches!(err, SchedError::InfeasibleResourceBound { .. }));
    }

    /// The scratch variant must reproduce `schedule` exactly, including
    /// across reuses of the same scratch.
    #[test]
    fn scratch_variant_is_identical_to_schedule() {
        use mwl_tgff::{TgffConfig, TgffGenerator};
        let mut scratch = SchedScratch::new();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(12), 9);
        for i in 0..10 {
            let g = generator.generate();
            let lat = OpLatencies::from_fn(&g, |op| 1 + (op.id().index() as Cycles % 3));
            let bounds = BTreeMap::from([
                (ResourceClass::Multiplier, 1 + i % 2),
                (ResourceClass::Adder, 1),
            ]);
            let mk = || PerClassBound::new(classes_of(&g), bounds.clone());
            for priority in [SchedulePriority::CriticalPath, SchedulePriority::InputOrder] {
                let scheduler = ListScheduler::new(priority);
                let plain = scheduler.schedule(&g, &lat, mk());
                let reused = scheduler.schedule_with_scratch(&g, &lat, mk(), &mut scratch);
                match (plain, reused) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b),
                    (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
                    (a, b) => panic!("scratch variant diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn rejects_invalid_latency_table() {
        let g = parallel_muls(2);
        let lat = OpLatencies::from_vec(vec![1]);
        let err = ListScheduler::default()
            .schedule(&g, &lat, Unbounded::new())
            .unwrap_err();
        assert!(matches!(err, SchedError::LatencyTableMismatch { .. }));
    }

    #[test]
    fn dependent_chain_with_shared_resource() {
        // Chain x -> y plus independent z, one multiplier; the scheduler must
        // interleave without violating precedence.
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::multiplier(8, 8));
        let z = b.add_operation(OpShape::multiplier(8, 8));
        b.add_dependency(x, y).unwrap();
        let g = b.build().unwrap();
        let lat = OpLatencies::uniform(&g, 2);
        let constraint = PerClassBound::new(
            classes_of(&g),
            BTreeMap::from([(ResourceClass::Multiplier, 1)]),
        );
        let s = ListScheduler::default()
            .schedule(&g, &lat, constraint)
            .unwrap();
        assert!(s.is_valid(&g, &lat));
        assert_eq!(s.makespan(&lat), 6);
        assert!(!s.overlaps(x, z, &lat));
        assert!(!s.overlaps(y, z, &lat));
    }
}
