//! Resource-constraint strategies for list scheduling.
//!
//! The list scheduler is generic over a [`ResourceConstraint`]; three
//! strategies are provided:
//!
//! * [`Unbounded`] — no limits (list scheduling degenerates to ASAP);
//! * [`PerClassBound`] — the standard constraint of Eqn (2): at every control
//!   step, no more than `N_y` operations of type `y` execute simultaneously;
//! * [`SchedulingSetBound`] — the paper's constraint of Eqn (3), which uses
//!   the incomplete wordlength information of the compatibility graph.  For
//!   every type `y` it requires
//!   `Σ_{s ∈ S_y} max_t Σ_{o ∈ O(s)} e_{o,t} / |S(o)|  ≤  N_y`,
//!   i.e. operations that could be executed by several scheduling-set members
//!   share their usage equally between those members, and each member
//!   contributes its peak usage to the type total.

use std::collections::BTreeMap;

use mwl_model::{Cycles, OpId, ResourceClass};

/// Numerical slack used when comparing fractional resource usage.
const EPSILON: f64 = 1e-9;

const WORD_BITS: usize = u64::BITS as usize;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

#[inline]
fn bit_is_set(words: &[u64], bit: usize) -> bool {
    words[bit / WORD_BITS] >> (bit % WORD_BITS) & 1 == 1
}

/// A pluggable admission policy consulted by the list scheduler before
/// placing an operation at a control step.
///
/// Implementations carry their own bookkeeping of already-committed
/// placements.  The scheduler guarantees that it calls [`commit`] exactly
/// once for every placement it makes, immediately after a successful
/// [`admits`] query with the same arguments.
///
/// [`admits`]: ResourceConstraint::admits
/// [`commit`]: ResourceConstraint::commit
pub trait ResourceConstraint {
    /// Returns `true` if the operation may start at `step` and occupy
    /// `latency` control steps without violating the constraint, given all
    /// previously committed placements.
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool;

    /// Records the placement of an operation.
    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles);

    /// Returns `true` if the operation could be admitted at *some* step in an
    /// otherwise empty schedule.  Used to distinguish "temporarily blocked"
    /// from "permanently impossible".
    fn admissible_at_all(&self, op: OpId, latency: Cycles) -> bool {
        // Default: being admitted at a far-future step of an empty timeline
        // is representative.  Implementations with history-dependent
        // constraints should override this.
        let _ = (op, latency);
        true
    }
}

/// A mutable reference forwards to the referenced constraint, letting a
/// caller keep ownership of a constraint whose buffers are reused across
/// scheduler invocations (see [`DenseSchedulingSetBound`]).
impl<C: ResourceConstraint + ?Sized> ResourceConstraint for &mut C {
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool {
        (**self).admits(op, step, latency)
    }

    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles) {
        (**self).commit(op, step, latency)
    }

    fn admissible_at_all(&self, op: OpId, latency: Cycles) -> bool {
        (**self).admissible_at_all(op, latency)
    }
}

/// No resource constraint: every operation is admitted immediately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Unbounded;

impl Unbounded {
    /// Creates the unbounded policy.
    #[must_use]
    pub fn new() -> Self {
        Unbounded
    }
}

impl ResourceConstraint for Unbounded {
    fn admits(&self, _op: OpId, _step: Cycles, _latency: Cycles) -> bool {
        true
    }

    fn commit(&mut self, _op: OpId, _step: Cycles, _latency: Cycles) {}
}

/// The standard resource constraint of Eqn (2): at most `N_y` operations of
/// class `y` execute during any control step.
#[derive(Debug, Clone)]
pub struct PerClassBound {
    /// Class of every operation, indexed by [`OpId`].
    op_classes: Vec<ResourceClass>,
    /// Bound per class; classes missing from the map are unbounded.
    bounds: BTreeMap<ResourceClass, usize>,
    /// Committed placements: `(start, end, class)`.
    committed: Vec<(Cycles, Cycles, ResourceClass)>,
}

impl PerClassBound {
    /// Creates the policy from per-operation classes and per-class bounds.
    /// Classes absent from `bounds` are not constrained.
    #[must_use]
    pub fn new(op_classes: Vec<ResourceClass>, bounds: BTreeMap<ResourceClass, usize>) -> Self {
        PerClassBound {
            op_classes,
            bounds,
            committed: Vec::new(),
        }
    }

    fn usage_at(&self, class: ResourceClass, step: Cycles) -> usize {
        self.committed
            .iter()
            .filter(|&&(s, e, c)| c == class && s <= step && step < e)
            .count()
    }
}

impl ResourceConstraint for PerClassBound {
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        let Some(&bound) = self.bounds.get(&class) else {
            return true;
        };
        if bound == 0 {
            return false;
        }
        (step..step + latency).all(|t| self.usage_at(class, t) < bound)
    }

    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles) {
        let class = self.op_classes[op.index()];
        self.committed.push((step, step + latency, class));
    }

    fn admissible_at_all(&self, op: OpId, _latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        self.bounds.get(&class).is_none_or(|&b| b > 0)
    }
}

/// Exclusive access to a fixed set of resource instances: every operation is
/// pre-bound to one instance, and no two operations bound to the same
/// instance may overlap in time.
///
/// This is the constraint used when *re*-scheduling an already-bound
/// datapath — e.g. the post-bind instance-merging pass, which serialises the
/// cliques of coalesced instances back-to-back — where the binding is data,
/// not a per-class head count.
#[derive(Debug, Clone, Default)]
pub struct PerInstanceExclusive {
    /// Instance index of every operation, indexed by [`OpId`].
    op_instances: Vec<usize>,
    /// Committed busy intervals per instance: `(start, end)`.
    committed: Vec<Vec<(Cycles, Cycles)>>,
}

impl PerInstanceExclusive {
    /// Creates the policy from the per-operation instance assignment.
    /// `num_instances` must exceed every entry of `op_instances`.
    #[must_use]
    pub fn new(op_instances: Vec<usize>, num_instances: usize) -> Self {
        debug_assert!(op_instances.iter().all(|&i| i < num_instances));
        PerInstanceExclusive {
            op_instances,
            committed: vec![Vec::new(); num_instances],
        }
    }

    /// Re-initialises the policy in place, reusing the committed-interval
    /// buffers — the allocation-free counterpart of [`new`](Self::new) for
    /// callers (like the merge pass) that re-schedule many bindings in a
    /// loop.  The result is indistinguishable from a fresh policy.
    pub fn rebuild(&mut self, op_instances: &[usize], num_instances: usize) {
        debug_assert!(op_instances.iter().all(|&i| i < num_instances));
        self.op_instances.clear();
        self.op_instances.extend_from_slice(op_instances);
        self.committed.truncate(num_instances);
        for intervals in &mut self.committed {
            intervals.clear();
        }
        if self.committed.len() < num_instances {
            self.committed.resize_with(num_instances, Vec::new);
        }
    }
}

impl ResourceConstraint for PerInstanceExclusive {
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool {
        let end = step + latency;
        self.committed[self.op_instances[op.index()]]
            .iter()
            .all(|&(s, e)| end <= s || e <= step)
    }

    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles) {
        self.committed[self.op_instances[op.index()]].push((step, step + latency));
    }
}

/// The paper's wordlength-aware constraint of Eqn (3).
///
/// Built from the wordlength compatibility graph: every operation `o` has a
/// set `S(o)` of compatible scheduling-set members; every member `s` has a
/// resource class.  The committed usage of a member `s` during step `t` is
/// `Σ_{o ∈ O(s) active at t} 1/|S(o)|`, and the constraint requires, for each
/// class `y`, that the sum over members of class `y` of their *peak* usage
/// stays within the bound `N_y`.
#[derive(Debug, Clone)]
pub struct SchedulingSetBound {
    /// Class of every operation, indexed by [`OpId`].
    op_classes: Vec<ResourceClass>,
    /// Scheduling-set members compatible with every operation (indices into
    /// `member_classes`), indexed by [`OpId`].
    op_members: Vec<Vec<usize>>,
    /// Resource class of every scheduling-set member.
    member_classes: Vec<ResourceClass>,
    /// Bound per class; classes missing from the map are unbounded.
    bounds: BTreeMap<ResourceClass, usize>,
    /// Per-member load profile over control steps.
    load: Vec<Vec<f64>>,
    /// Per-member peak load so far.
    peak: Vec<f64>,
}

impl SchedulingSetBound {
    /// Creates the policy.
    ///
    /// * `op_classes[i]` — resource class of operation `i`;
    /// * `op_members[i]` — scheduling-set members able to execute operation
    ///   `i` (the paper's `S(o)`), as indices into `member_classes`;
    /// * `member_classes[j]` — class of scheduling-set member `j`;
    /// * `bounds` — `N_y` per class (absent classes are unbounded).
    #[must_use]
    pub fn new(
        op_classes: Vec<ResourceClass>,
        op_members: Vec<Vec<usize>>,
        member_classes: Vec<ResourceClass>,
        bounds: BTreeMap<ResourceClass, usize>,
    ) -> Self {
        let members = member_classes.len();
        SchedulingSetBound {
            op_classes,
            op_members,
            member_classes,
            bounds,
            load: vec![Vec::new(); members],
            peak: vec![0.0; members],
        }
    }

    /// The left-hand side of Eqn (3) for one class, given optional tentative
    /// peaks overriding the committed ones.
    fn class_total(&self, class: ResourceClass, tentative: Option<&[f64]>) -> f64 {
        (0..self.member_classes.len())
            .filter(|&j| self.member_classes[j] == class)
            .map(|j| tentative.map_or(self.peak[j], |t| t[j]))
            .sum()
    }

    /// Current value of the Eqn (3) left-hand side for a class (useful for
    /// diagnostics and tests).
    #[must_use]
    pub fn current_class_total(&self, class: ResourceClass) -> f64 {
        self.class_total(class, None)
    }

    fn member_load_at(&self, member: usize, step: Cycles) -> f64 {
        self.load[member].get(step as usize).copied().unwrap_or(0.0)
    }
}

impl ResourceConstraint for SchedulingSetBound {
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        let Some(&bound) = self.bounds.get(&class) else {
            return true;
        };
        let members = &self.op_members[op.index()];
        if members.is_empty() {
            return false;
        }
        let share = 1.0 / members.len() as f64;
        // Tentative peaks with this operation placed.
        let mut tentative = self.peak.clone();
        for &m in members {
            let mut new_peak = self.peak[m];
            for t in step..step + latency {
                new_peak = new_peak.max(self.member_load_at(m, t) + share);
            }
            tentative[m] = new_peak;
        }
        self.class_total(class, Some(&tentative)) <= bound as f64 + EPSILON
    }

    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles) {
        let members = self.op_members[op.index()].clone();
        if members.is_empty() {
            return;
        }
        let share = 1.0 / members.len() as f64;
        let end = (step + latency) as usize;
        for &m in &members {
            if self.load[m].len() < end {
                self.load[m].resize(end, 0.0);
            }
            for t in step as usize..end {
                self.load[m][t] += share;
                if self.load[m][t] > self.peak[m] {
                    self.peak[m] = self.load[m][t];
                }
            }
        }
    }

    fn admissible_at_all(&self, op: OpId, latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        let Some(&bound) = self.bounds.get(&class) else {
            return true;
        };
        let members = &self.op_members[op.index()];
        if members.is_empty() || bound == 0 {
            return false;
        }
        // Placing the op in untouched future steps raises each compatible
        // member's peak to at least 1/|S(o)| (if not already higher); the
        // other members keep their current peaks.
        let share = 1.0 / members.len() as f64;
        let mut tentative = self.peak.clone();
        for &m in members {
            tentative[m] = tentative[m].max(share);
        }
        let _ = latency;
        self.class_total(class, Some(&tentative)) <= bound as f64 + EPSILON
    }
}

/// The scratch-reusing dense form of [`SchedulingSetBound`], built for the
/// allocator's inner loop.
///
/// Behaviourally **identical** to [`SchedulingSetBound`] — every admission
/// decision performs the same floating-point operations in the same order —
/// but engineered for the steady state of the `DPAlloc` refinement loop:
///
/// * per-class bounds live in a [`ResourceClass::COUNT`]-sized array instead
///   of a `BTreeMap`;
/// * the scheduling-set membership tables (`S(o)` rows, member classes,
///   members-by-class) are owned buffers updated in place — when a
///   refinement deletes wordlength edges of one operation and the scheduling
///   set is unchanged, only that operation's row is rewritten;
/// * [`admits`](ResourceConstraint::admits) is allocation-free: instead of
///   cloning the peak table to overlay tentative peaks, it walks the class's
///   members in index order and substitutes the tentative value on the fly
///   (the summation order, and therefore the rounding, of
///   [`SchedulingSetBound`] is preserved exactly);
/// * [`reset_loads`](Self::reset_loads) clears the committed load profiles
///   without releasing their allocations, so repeated schedules are
///   allocation-free after warm-up.
///
/// Pass `&mut bound` to [`crate::ListScheduler::schedule`] (mutable
/// references forward the [`ResourceConstraint`] impl) so the buffers stay
/// with the caller.
#[derive(Debug, Default)]
pub struct DenseSchedulingSetBound {
    /// Class of every operation, indexed by [`OpId`].
    op_classes: Vec<ResourceClass>,
    /// Bound per class, dense; `None` means unbounded.
    bounds: [Option<usize>; ResourceClass::COUNT],
    /// Resource class of every scheduling-set member.
    member_classes: Vec<ResourceClass>,
    /// Member indices by class, ascending — the iteration domain of the
    /// Eqn (3) left-hand side.
    class_members: [Vec<u32>; ResourceClass::COUNT],
    /// Scheduling-set members compatible with every operation (`S(o)`),
    /// ascending member indices, indexed by [`OpId`].  Kept for the share
    /// denominator `|S(o)|` and as the readable form of the rows.
    rows: Vec<Vec<u32>>,
    /// Dense membership: bit `j` of row `o` is set iff member `j` ∈ `S(o)`.
    /// Flat, stride `row_words` — the membership probe inside
    /// [`admits`](ResourceConstraint::admits) is a single bit test instead
    /// of a binary search, while the class-member walk (and therefore the
    /// FP summation order) is unchanged.
    row_bits: Vec<u64>,
    /// Words per `row_bits` row (`ceil(members / 64)`).
    row_words: usize,
    /// Per-member load profile over control steps.
    load: Vec<Vec<f64>>,
    /// Per-member peak load so far.
    peak: Vec<f64>,
}

impl DenseSchedulingSetBound {
    /// Creates an empty constraint; configure it with
    /// [`reset_problem`](Self::reset_problem), [`set_members`](Self::set_members)
    /// and [`set_row`](Self::set_row).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new scheduling problem: copies the per-operation classes and
    /// installs the dense per-class bounds (`None` = unbounded).  Membership
    /// tables and load state are configured separately so they can survive
    /// across refinement iterations.
    pub fn reset_problem(
        &mut self,
        op_classes: &[ResourceClass],
        bounds: [Option<usize>; ResourceClass::COUNT],
    ) {
        self.op_classes.clear();
        self.op_classes.extend_from_slice(op_classes);
        self.bounds = bounds;
        if self.rows.len() < op_classes.len() {
            self.rows.resize_with(op_classes.len(), Vec::new);
        }
        for row in &mut self.rows {
            row.clear();
        }
        self.row_bits.clear();
    }

    /// Replaces the scheduling-set member classes (invalidating every row —
    /// rewrite them with [`set_row`](Self::set_row)).
    pub fn set_members(&mut self, classes: impl Iterator<Item = ResourceClass>) {
        self.member_classes.clear();
        self.member_classes.extend(classes);
        for list in &mut self.class_members {
            list.clear();
        }
        for (j, c) in self.member_classes.iter().enumerate() {
            self.class_members[c.index()].push(j as u32);
        }
        let members = self.member_classes.len();
        if self.load.len() < members {
            self.load.resize_with(members, Vec::new);
        }
        if self.peak.len() < members {
            self.peak.resize(members, 0.0);
        }
        self.row_words = words_for(members);
        self.row_bits.clear();
        self.row_bits
            .resize(self.op_classes.len() * self.row_words, 0);
    }

    /// Rewrites one operation's member row `S(o)` (ascending member
    /// indices).
    pub fn set_row(&mut self, op: OpId, members: impl Iterator<Item = usize>) {
        let row = &mut self.rows[op.index()];
        row.clear();
        row.extend(members.map(|j| j as u32));
        let bits = &mut self.row_bits[op.index() * self.row_words..][..self.row_words];
        bits.fill(0);
        for &j in row.iter() {
            bits[j as usize / WORD_BITS] |= 1 << (j as usize % WORD_BITS);
        }
    }

    /// Clears all committed load and peaks, keeping every buffer allocation —
    /// call before each schedule.
    pub fn reset_loads(&mut self) {
        for profile in &mut self.load {
            profile.clear();
        }
        for peak in &mut self.peak {
            *peak = 0.0;
        }
    }

    #[inline]
    fn load_at(&self, member: usize, step: Cycles) -> f64 {
        self.load[member].get(step as usize).copied().unwrap_or(0.0)
    }
}

impl ResourceConstraint for DenseSchedulingSetBound {
    #[inline]
    fn admits(&self, op: OpId, step: Cycles, latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        let Some(bound) = self.bounds[class.index()] else {
            return true;
        };
        let row = &self.rows[op.index()];
        if row.is_empty() {
            return false;
        }
        let share = 1.0 / row.len() as f64;
        let bits = &self.row_bits[op.index() * self.row_words..][..self.row_words];
        // The Eqn (3) left-hand side with this op tentatively placed: walk
        // the class's members in index order (the same order, and therefore
        // the same rounding, as SchedulingSetBound::class_total) overlaying
        // the tentative peak of the op's own members on the fly.  Membership
        // is a bit probe into the dense row.
        let mut total = 0.0f64;
        for &j in &self.class_members[class.index()] {
            let m = j as usize;
            let value = if bit_is_set(bits, m) {
                let mut new_peak = self.peak[m];
                for t in step..step + latency {
                    new_peak = new_peak.max(self.load_at(m, t) + share);
                }
                new_peak
            } else {
                self.peak[m]
            };
            total += value;
        }
        total <= bound as f64 + EPSILON
    }

    fn commit(&mut self, op: OpId, step: Cycles, latency: Cycles) {
        let row_len = self.rows[op.index()].len();
        if row_len == 0 {
            return;
        }
        let share = 1.0 / row_len as f64;
        let end = (step + latency) as usize;
        for k in 0..row_len {
            let m = self.rows[op.index()][k] as usize;
            if self.load[m].len() < end {
                self.load[m].resize(end, 0.0);
            }
            for t in step as usize..end {
                self.load[m][t] += share;
                if self.load[m][t] > self.peak[m] {
                    self.peak[m] = self.load[m][t];
                }
            }
        }
    }

    fn admissible_at_all(&self, op: OpId, latency: Cycles) -> bool {
        let class = self.op_classes[op.index()];
        let Some(bound) = self.bounds[class.index()] else {
            return true;
        };
        let row = &self.rows[op.index()];
        if row.is_empty() || bound == 0 {
            return false;
        }
        let share = 1.0 / row.len() as f64;
        let bits = &self.row_bits[op.index() * self.row_words..][..self.row_words];
        let mut total = 0.0f64;
        for &j in &self.class_members[class.index()] {
            let m = j as usize;
            let value = if bit_is_set(bits, m) {
                self.peak[m].max(share)
            } else {
                self.peak[m]
            };
            total += value;
        }
        let _ = latency;
        total <= bound as f64 + EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> OpId {
        OpId::new(i)
    }

    #[test]
    fn unbounded_admits_everything() {
        let mut u = Unbounded::new();
        assert!(u.admits(id(0), 0, 5));
        u.commit(id(0), 0, 5);
        assert!(u.admits(id(1), 0, 5));
        assert!(u.admissible_at_all(id(1), 3));
    }

    #[test]
    fn per_class_bound_limits_concurrency() {
        let classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut c = PerClassBound::new(classes, bounds);
        assert!(c.admits(id(0), 0, 3));
        c.commit(id(0), 0, 3);
        assert!(!c.admits(id(1), 0, 2));
        assert!(!c.admits(id(1), 2, 2));
        assert!(c.admits(id(1), 3, 2));
        assert!(c.admissible_at_all(id(1), 2));
    }

    #[test]
    fn per_class_bound_ignores_other_classes() {
        let classes = vec![ResourceClass::Multiplier, ResourceClass::Adder];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut c = PerClassBound::new(classes, bounds);
        c.commit(id(0), 0, 3);
        // The adder is unconstrained (no entry in the bound map).
        assert!(c.admits(id(1), 0, 3));
    }

    #[test]
    fn per_class_zero_bound_rejects_forever() {
        let classes = vec![ResourceClass::Adder];
        let bounds = BTreeMap::from([(ResourceClass::Adder, 0)]);
        let c = PerClassBound::new(classes, bounds);
        assert!(!c.admits(id(0), 10, 1));
        assert!(!c.admissible_at_all(id(0), 1));
    }

    /// Reproduces the paper's Fig. 2 discussion: after deleting the edge
    /// between `o1` and the large multiplier, one multiplier resource is no
    /// longer enough even though the operations never overlap in time.
    #[test]
    fn eqn3_rejects_single_multiplier_after_edge_deletion() {
        // Two multiplications; members: 0 = small multiplier, 1 = large.
        let op_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let member_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        // o0 can only use the small member, o1 only the large member.
        let op_members = vec![vec![0], vec![1]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut c = SchedulingSetBound::new(op_classes, op_members, member_classes, bounds);
        assert!(c.admits(id(0), 0, 3));
        c.commit(id(0), 0, 3);
        // Even though o1 would run later (no time overlap), admitting it
        // would need a second multiplier: sum of member peaks = 2 > 1.
        assert!(!c.admits(id(1), 5, 3));
        assert!(!c.admissible_at_all(id(1), 3));
    }

    #[test]
    fn eqn3_degenerates_to_eqn2_with_single_member() {
        // Both ops can use the single big member: constraint behaves like a
        // concurrency bound of 1.
        let op_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let member_classes = vec![ResourceClass::Multiplier];
        let op_members = vec![vec![0], vec![0]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut c = SchedulingSetBound::new(op_classes, op_members, member_classes, bounds);
        assert!(c.admits(id(0), 0, 3));
        c.commit(id(0), 0, 3);
        assert!(!c.admits(id(1), 1, 3)); // overlap -> rejected
        assert!(c.admits(id(1), 3, 3)); // sequential -> accepted
        c.commit(id(1), 3, 3);
        assert!((c.current_class_total(ResourceClass::Multiplier) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eqn3_fractional_sharing_allows_flexible_ops() {
        // Two members; op0 and op1 can use either member (|S(o)| = 2), so
        // each contributes 0.5 to each member.  Under a bound of one
        // multiplier the two flexible operations may run sequentially (class
        // total stays at 1.0) but not concurrently (total would reach 2.0).
        let op_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let member_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let op_members = vec![vec![0, 1], vec![0, 1]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut c = SchedulingSetBound::new(op_classes, op_members, member_classes, bounds);
        assert!(c.admits(id(0), 0, 2));
        c.commit(id(0), 0, 2);
        assert!((c.current_class_total(ResourceClass::Multiplier) - 1.0).abs() < 1e-9);
        assert!(!c.admits(id(1), 0, 2)); // concurrent -> total 2.0 > 1
        assert!(c.admits(id(1), 2, 2)); // sequential -> total stays 1.0
        c.commit(id(1), 2, 2);
        assert!((c.current_class_total(ResourceClass::Multiplier) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eqn3_is_at_least_as_strict_as_eqn2() {
        // Any placement admitted by Eqn 3 must also be admitted by Eqn 2 with
        // the same bounds (the paper: Eqn 3 is at least as strict).
        let op_classes = vec![ResourceClass::Multiplier; 4];
        let member_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let op_members = vec![vec![0], vec![0, 1], vec![1], vec![0, 1]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 2)]);
        let mut eqn3 = SchedulingSetBound::new(
            op_classes.clone(),
            op_members,
            member_classes,
            bounds.clone(),
        );
        let mut eqn2 = PerClassBound::new(op_classes, bounds);
        let placements = [(0u32, 0u32, 2u32), (1, 0, 2), (2, 2, 2), (3, 2, 2)];
        for &(op, step, lat) in &placements {
            if eqn3.admits(id(op), step, lat) {
                assert!(
                    eqn2.admits(id(op), step, lat),
                    "Eqn3 admitted a placement Eqn2 rejects"
                );
                eqn3.commit(id(op), step, lat);
                eqn2.commit(id(op), step, lat);
            }
        }
    }

    #[test]
    fn eqn3_unlisted_class_is_unbounded() {
        let op_classes = vec![ResourceClass::Adder];
        let member_classes = vec![ResourceClass::Adder];
        let op_members = vec![vec![0]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let c = SchedulingSetBound::new(op_classes, op_members, member_classes, bounds);
        assert!(c.admits(id(0), 0, 2));
        assert!(c.admissible_at_all(id(0), 2));
    }

    /// Builds the dense twin of a [`SchedulingSetBound`] configuration.
    fn dense_twin(
        op_classes: &[ResourceClass],
        op_members: &[Vec<usize>],
        member_classes: &[ResourceClass],
        bounds: &BTreeMap<ResourceClass, usize>,
    ) -> DenseSchedulingSetBound {
        let mut dense_bounds = [None; ResourceClass::COUNT];
        for (&c, &b) in bounds {
            dense_bounds[c.index()] = Some(b);
        }
        let mut dense = DenseSchedulingSetBound::new();
        dense.reset_problem(op_classes, dense_bounds);
        dense.set_members(member_classes.iter().copied());
        for (i, row) in op_members.iter().enumerate() {
            dense.set_row(id(i as u32), row.iter().copied());
        }
        dense
    }

    /// The dense constraint must agree with [`SchedulingSetBound`] decision
    /// for decision, including near the fractional-sharing boundary.
    #[test]
    fn dense_bound_matches_sparse_bound_decision_for_decision() {
        let op_classes = vec![
            ResourceClass::Multiplier,
            ResourceClass::Multiplier,
            ResourceClass::Multiplier,
            ResourceClass::Adder,
            ResourceClass::Multiplier,
        ];
        let member_classes = vec![
            ResourceClass::Multiplier,
            ResourceClass::Multiplier,
            ResourceClass::Adder,
        ];
        let op_members = vec![vec![0], vec![0, 1], vec![1], vec![2], vec![0, 1]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 2), (ResourceClass::Adder, 1)]);
        let mut sparse = SchedulingSetBound::new(
            op_classes.clone(),
            op_members.clone(),
            member_classes.clone(),
            bounds.clone(),
        );
        let mut dense = dense_twin(&op_classes, &op_members, &member_classes, &bounds);

        // Deterministic pseudo-random probe sequence.
        let mut state = 0x9e37_79b9u64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for _ in 0..400 {
            let op = id(next(op_classes.len() as u64) as u32);
            let step = next(6) as Cycles;
            let latency = 1 + next(3) as Cycles;
            let a = sparse.admits(op, step, latency);
            let b = dense.admits(op, step, latency);
            assert_eq!(a, b, "admits diverged for {op:?} @ {step}+{latency}");
            assert_eq!(
                sparse.admissible_at_all(op, latency),
                dense.admissible_at_all(op, latency)
            );
            if a && next(2) == 0 {
                sparse.commit(op, step, latency);
                dense.commit(op, step, latency);
            }
        }
    }

    /// `reset_loads` restores a fresh dense constraint (buffers reused, not
    /// state).
    #[test]
    fn dense_bound_reset_clears_committed_load() {
        let op_classes = vec![ResourceClass::Multiplier, ResourceClass::Multiplier];
        let member_classes = vec![ResourceClass::Multiplier];
        let op_members = vec![vec![0], vec![0]];
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
        let mut dense = dense_twin(&op_classes, &op_members, &member_classes, &bounds);
        assert!(dense.admits(id(0), 0, 3));
        dense.commit(id(0), 0, 3);
        assert!(!dense.admits(id(1), 1, 3));
        dense.reset_loads();
        assert!(dense.admits(id(1), 1, 3));
        // A mutable reference forwards the constraint unchanged.
        let via_ref: &mut DenseSchedulingSetBound = &mut dense;
        assert!(via_ref.admits(id(1), 1, 3));
    }

    #[test]
    fn eqn3_empty_member_set_rejected() {
        let op_classes = vec![ResourceClass::Adder];
        let member_classes = vec![ResourceClass::Adder];
        let op_members = vec![vec![]];
        let bounds = BTreeMap::from([(ResourceClass::Adder, 4)]);
        let c = SchedulingSetBound::new(op_classes, op_members, member_classes, bounds);
        assert!(!c.admits(id(0), 0, 2));
        assert!(!c.admissible_at_all(id(0), 2));
    }
}
