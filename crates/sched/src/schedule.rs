//! Schedules and per-operation latency tables.
//!
//! A [`Schedule`] assigns each operation a start control step; an
//! [`OpLatencies`] table carries per-operation cycle counts.  Because
//! wordlength selection changes latencies (a small multiplication run on a
//! wide multiplier takes the *resource's* latency), the paper's algorithms
//! always pair a schedule with the latency table it was computed under.

use std::fmt;

use serde::{Deserialize, Serialize};

use mwl_model::{Cycles, OpId, Operation, SequencingGraph};

use crate::error::SchedError;

/// A table of per-operation latencies, indexed by [`OpId`].
///
/// The allocator uses two such tables: the *upper bounds* `L_o` (latency of
/// the slowest resource an operation is still compatible with) during
/// scheduling, and the *bound latencies* `ℓ(o)` (latency of the resource the
/// operation was actually bound to) when analysing the result.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    latencies: Vec<Cycles>,
}

impl OpLatencies {
    /// Builds a table from an explicit vector (entry `i` is the latency of
    /// operation `i`).
    #[must_use]
    pub fn from_vec(latencies: Vec<Cycles>) -> Self {
        OpLatencies { latencies }
    }

    /// Builds a table by evaluating a function on every operation of a graph.
    #[must_use]
    pub fn from_fn(graph: &SequencingGraph, mut f: impl FnMut(&Operation) -> Cycles) -> Self {
        OpLatencies {
            latencies: graph.operations().iter().map(&mut f).collect(),
        }
    }

    /// Builds a table with the same latency for every operation.
    #[must_use]
    pub fn uniform(graph: &SequencingGraph, latency: Cycles) -> Self {
        OpLatencies {
            latencies: vec![latency; graph.len()],
        }
    }

    /// An empty table, intended as a reusable buffer for
    /// [`copy_from_slice`](Self::copy_from_slice).
    #[must_use]
    pub fn empty() -> Self {
        OpLatencies {
            latencies: Vec::new(),
        }
    }

    /// Overwrites the table with the given per-operation latencies, reusing
    /// the existing allocation — the scratch-buffer counterpart of
    /// [`from_vec`](Self::from_vec).
    pub fn copy_from_slice(&mut self, latencies: &[Cycles]) {
        self.latencies.clear();
        self.latencies.extend_from_slice(latencies);
    }

    /// Latency of one operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not belong to the graph this table was
    /// built for.
    #[must_use]
    pub fn get(&self, op: OpId) -> Cycles {
        self.latencies[op.index()]
    }

    /// Sets the latency of one operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation index is out of range.
    pub fn set(&mut self, op: OpId, latency: Cycles) {
        self.latencies[op.index()] = latency;
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Returns `true` if the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Underlying slice of latencies in operation-id order.
    #[must_use]
    pub fn as_slice(&self) -> &[Cycles] {
        &self.latencies
    }

    /// Validates the table against a graph: the lengths must match and no
    /// operation may have zero latency.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::LatencyTableMismatch`] or
    /// [`SchedError::ZeroLatency`].
    pub fn validate(&self, graph: &SequencingGraph) -> Result<(), SchedError> {
        if self.latencies.len() != graph.len() {
            return Err(SchedError::LatencyTableMismatch {
                graph_ops: graph.len(),
                table_ops: self.latencies.len(),
            });
        }
        for (i, &l) in self.latencies.iter().enumerate() {
            if l == 0 {
                return Err(SchedError::ZeroLatency(OpId::new(i as u32)));
            }
        }
        Ok(())
    }
}

impl FromIterator<Cycles> for OpLatencies {
    fn from_iter<T: IntoIterator<Item = Cycles>>(iter: T) -> Self {
        OpLatencies {
            latencies: iter.into_iter().collect(),
        }
    }
}

/// A start control step for every operation of a sequencing graph.
///
/// A schedule is always interpreted together with a latency table: operation
/// `o` occupies the half-open interval `[start(o), start(o) + latency(o))`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    start: Vec<Cycles>,
}

impl Schedule {
    /// Creates a schedule from explicit start steps (entry `i` is the start
    /// step of operation `i`).
    #[must_use]
    pub fn from_vec(start: Vec<Cycles>) -> Self {
        Schedule { start }
    }

    /// Number of scheduled operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Returns `true` if the schedule covers no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Start control step of an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation does not belong to the graph this schedule was
    /// built for.
    #[must_use]
    pub fn start(&self, op: OpId) -> Cycles {
        self.start[op.index()]
    }

    /// Completion step of an operation under the given latency table
    /// (`start + latency`, exclusive).
    #[must_use]
    pub fn end(&self, op: OpId, latencies: &OpLatencies) -> Cycles {
        self.start(op) + latencies.get(op)
    }

    /// Overall schedule latency: the largest completion step over all
    /// operations.
    #[must_use]
    pub fn makespan(&self, latencies: &OpLatencies) -> Cycles {
        self.start
            .iter()
            .enumerate()
            .map(|(i, &s)| s + latencies.get(OpId::new(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if the two operations' execution intervals overlap.
    #[must_use]
    pub fn overlaps(&self, a: OpId, b: OpId, latencies: &OpLatencies) -> bool {
        let (sa, ea) = (self.start(a), self.end(a, latencies));
        let (sb, eb) = (self.start(b), self.end(b, latencies));
        sa < eb && sb < ea
    }

    /// Underlying slice of start steps in operation-id order.
    #[must_use]
    pub fn as_slice(&self) -> &[Cycles] {
        &self.start
    }

    /// Validates the schedule against a graph and latency table:
    /// every dependence `u -> v` must satisfy `end(u) <= start(v)`.
    ///
    /// # Errors
    ///
    /// Propagates latency-table validation errors; precedence violations are
    /// reported as `Err(None)`-free booleans via the returned list of
    /// offending edges (empty when the schedule is valid).
    pub fn precedence_violations(
        &self,
        graph: &SequencingGraph,
        latencies: &OpLatencies,
    ) -> Result<Vec<(OpId, OpId)>, SchedError> {
        latencies.validate(graph)?;
        if self.start.len() != graph.len() {
            return Err(SchedError::LatencyTableMismatch {
                graph_ops: graph.len(),
                table_ops: self.start.len(),
            });
        }
        let mut violations = Vec::new();
        for e in graph.edges() {
            if self.end(e.from, latencies) > self.start(e.to) {
                violations.push((e.from, e.to));
            }
        }
        Ok(violations)
    }

    /// Returns `true` if the schedule respects every data dependence of the
    /// graph under the given latency table.
    #[must_use]
    pub fn is_valid(&self, graph: &SequencingGraph, latencies: &OpLatencies) -> bool {
        matches!(self.precedence_violations(graph, latencies), Ok(v) if v.is_empty())
    }

    /// The operations executing during a given control step, under the given
    /// latency table.
    #[must_use]
    pub fn active_at(&self, step: Cycles, latencies: &OpLatencies) -> Vec<OpId> {
        (0..self.start.len())
            .map(|i| OpId::new(i as u32))
            .filter(|&o| self.start(o) <= step && step < self.end(o, latencies))
            .collect()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule[")?;
        for (i, s) in self.start.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "o{i}@{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder};

    fn chain3() -> SequencingGraph {
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::adder(16));
        let z = b.add_operation(OpShape::adder(16));
        b.add_dependency(x, y).unwrap();
        b.add_dependency(y, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn latency_table_constructors() {
        let g = chain3();
        let t = OpLatencies::uniform(&g, 2);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.get(OpId::new(1)), 2);
        let t = OpLatencies::from_fn(&g, |op| if op.kind().is_additive() { 2 } else { 3 });
        assert_eq!(t.as_slice(), &[3, 2, 2]);
        let t: OpLatencies = [1, 2, 3].into_iter().collect();
        assert_eq!(t.get(OpId::new(2)), 3);
    }

    #[test]
    fn latency_table_set_and_validate() {
        let g = chain3();
        let mut t = OpLatencies::uniform(&g, 1);
        t.set(OpId::new(0), 4);
        assert_eq!(t.get(OpId::new(0)), 4);
        assert!(t.validate(&g).is_ok());
        t.set(OpId::new(2), 0);
        assert_eq!(t.validate(&g), Err(SchedError::ZeroLatency(OpId::new(2))));
        let short = OpLatencies::from_vec(vec![1, 1]);
        assert_eq!(
            short.validate(&g),
            Err(SchedError::LatencyTableMismatch {
                graph_ops: 3,
                table_ops: 2
            })
        );
    }

    #[test]
    fn schedule_basics() {
        let g = chain3();
        let lat = OpLatencies::from_vec(vec![2, 2, 2]);
        let s = Schedule::from_vec(vec![0, 2, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.start(OpId::new(1)), 2);
        assert_eq!(s.end(OpId::new(1), &lat), 4);
        assert_eq!(s.makespan(&lat), 6);
        assert!(s.is_valid(&g, &lat));
        assert_eq!(s.active_at(2, &lat), vec![OpId::new(1)]);
        assert_eq!(s.active_at(5, &lat), vec![OpId::new(2)]);
        assert!(!s.overlaps(OpId::new(0), OpId::new(1), &lat));
    }

    #[test]
    fn schedule_violations_detected() {
        let g = chain3();
        let lat = OpLatencies::from_vec(vec![2, 2, 2]);
        let s = Schedule::from_vec(vec![0, 1, 4]);
        let v = s.precedence_violations(&g, &lat).unwrap();
        assert_eq!(v, vec![(OpId::new(0), OpId::new(1))]);
        assert!(!s.is_valid(&g, &lat));
        assert!(s.overlaps(OpId::new(0), OpId::new(1), &lat));
    }

    #[test]
    fn schedule_length_mismatch_is_error() {
        let g = chain3();
        let lat = OpLatencies::uniform(&g, 1);
        let s = Schedule::from_vec(vec![0, 1]);
        assert!(matches!(
            s.precedence_violations(&g, &lat),
            Err(SchedError::LatencyTableMismatch { .. })
        ));
    }

    #[test]
    fn empty_schedule_makespan_is_zero() {
        let s = Schedule::from_vec(vec![]);
        let lat = OpLatencies::from_vec(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.makespan(&lat), 0);
    }

    #[test]
    fn display_lists_every_op() {
        let s = Schedule::from_vec(vec![0, 3, 7]);
        let text = s.to_string();
        assert!(text.contains("o0@0"));
        assert!(text.contains("o1@3"));
        assert!(text.contains("o2@7"));
    }
}
