//! ASAP / ALAP scheduling, critical path and mobility.
//!
//! These unconstrained schedules bracket every feasible schedule and drive
//! the paper's machinery: the critical path over native latencies is the
//! minimum achievable constraint `λ_min`, and the ASAP/ALAP window (the
//! *mobility* of an operation) is computed with the latency *upper bounds*
//! `L_o` maintained by the compatibility graph (Section 2.2).

use mwl_model::{Cycles, OpId, SequencingGraph};

use crate::error::SchedError;
use crate::schedule::{OpLatencies, Schedule};

/// As-soon-as-possible schedule: every operation starts as early as its data
/// dependences allow, with unlimited resources.
///
/// # Panics
///
/// Panics if the latency table does not match the graph (use
/// [`OpLatencies::validate`] first when the table comes from untrusted
/// input).
#[must_use]
pub fn asap(graph: &SequencingGraph, latencies: &OpLatencies) -> Schedule {
    assert_eq!(latencies.len(), graph.len(), "latency table mismatch");
    let order = graph.topological_order();
    let mut start = vec![0; graph.len()];
    for &v in &order {
        let mut earliest = 0;
        for &p in graph.predecessors(v) {
            earliest = earliest.max(start[p.index()] + latencies.get(p));
        }
        start[v.index()] = earliest;
    }
    Schedule::from_vec(start)
}

/// As-late-as-possible schedule with respect to the given deadline: every
/// operation finishes as late as possible while still meeting the deadline
/// and all data dependences, with unlimited resources.
///
/// # Errors
///
/// Returns [`SchedError::DeadlineTooTight`] if the deadline is smaller than
/// the critical path length, and latency-table validation errors otherwise.
pub fn alap(
    graph: &SequencingGraph,
    latencies: &OpLatencies,
    deadline: Cycles,
) -> Result<Schedule, SchedError> {
    latencies.validate(graph)?;
    let cp = critical_path_length(graph, latencies);
    if deadline < cp {
        return Err(SchedError::DeadlineTooTight {
            deadline,
            critical_path: cp,
        });
    }
    let order = graph.topological_order();
    let mut end = vec![deadline; graph.len()];
    for &v in order.iter().rev() {
        let mut latest_end = deadline;
        for &s in graph.successors(v) {
            let succ_start = end[s.index()] - latencies.get(s);
            latest_end = latest_end.min(succ_start);
        }
        end[v.index()] = latest_end;
    }
    let start = (0..graph.len())
        .map(|i| end[i] - latencies.get(OpId::new(i as u32)))
        .collect();
    Ok(Schedule::from_vec(start))
}

/// Length of the critical path of the graph under the given latencies: the
/// minimum achievable overall latency with unlimited resources.
#[must_use]
pub fn critical_path_length(graph: &SequencingGraph, latencies: &OpLatencies) -> Cycles {
    asap(graph, latencies).makespan(latencies)
}

/// Mobility (ALAP start minus ASAP start) of every operation with respect to
/// a deadline.  Operations with zero mobility form the classic critical path.
///
/// # Errors
///
/// Same conditions as [`alap`].
pub fn mobility(
    graph: &SequencingGraph,
    latencies: &OpLatencies,
    deadline: Cycles,
) -> Result<Vec<Cycles>, SchedError> {
    let early = asap(graph, latencies);
    let late = alap(graph, latencies, deadline)?;
    Ok((0..graph.len())
        .map(|i| {
            let op = OpId::new(i as u32);
            late.start(op) - early.start(op)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder};

    /// The motivational graph of the paper's Fig. 1(a):
    /// four multiplications feeding a chain of two additions (shape chosen to
    /// exercise both parallelism and chaining).
    fn fig1_like() -> (SequencingGraph, OpLatencies) {
        let mut b = SequencingGraphBuilder::new();
        let m1 = b.add_operation(OpShape::multiplier(8, 8)); // lat 2
        let m2 = b.add_operation(OpShape::multiplier(12, 12)); // lat 3
        let m3 = b.add_operation(OpShape::multiplier(16, 16)); // lat 4
        let a1 = b.add_operation(OpShape::adder(16)); // lat 2
        let a2 = b.add_operation(OpShape::adder(20)); // lat 2
        b.add_dependency(m1, a1).unwrap();
        b.add_dependency(m2, a1).unwrap();
        b.add_dependency(m3, a2).unwrap();
        b.add_dependency(a1, a2).unwrap();
        let g = b.build().unwrap();
        let lat = OpLatencies::from_vec(vec![2, 3, 4, 2, 2]);
        (g, lat)
    }

    #[test]
    fn asap_respects_dependences() {
        let (g, lat) = fig1_like();
        let s = asap(&g, &lat);
        assert!(s.is_valid(&g, &lat));
        assert_eq!(s.start(OpId::new(0)), 0);
        assert_eq!(s.start(OpId::new(1)), 0);
        assert_eq!(s.start(OpId::new(2)), 0);
        assert_eq!(s.start(OpId::new(3)), 3); // after m2
        assert_eq!(s.start(OpId::new(4)), 5); // after a1 (5) and m3 (4)
        assert_eq!(s.makespan(&lat), 7);
    }

    #[test]
    fn critical_path_matches_asap_makespan() {
        let (g, lat) = fig1_like();
        assert_eq!(critical_path_length(&g, &lat), 7);
    }

    #[test]
    fn alap_meets_deadline_and_is_valid() {
        let (g, lat) = fig1_like();
        let s = alap(&g, &lat, 10).unwrap();
        assert!(s.is_valid(&g, &lat));
        assert_eq!(s.makespan(&lat), 10);
        // ALAP start of the final adder is deadline - latency.
        assert_eq!(s.start(OpId::new(4)), 8);
    }

    #[test]
    fn alap_at_critical_path_equals_asap_on_critical_ops() {
        let (g, lat) = fig1_like();
        let cp = critical_path_length(&g, &lat);
        let early = asap(&g, &lat);
        let late = alap(&g, &lat, cp).unwrap();
        // Operations on the critical path (m2 -> a1 -> a2) have equal times.
        for &i in &[1u32, 3, 4] {
            assert_eq!(early.start(OpId::new(i)), late.start(OpId::new(i)));
        }
        // Off-critical operations have slack.
        assert!(late.start(OpId::new(0)) > early.start(OpId::new(0)));
    }

    #[test]
    fn alap_rejects_too_tight_deadline() {
        let (g, lat) = fig1_like();
        assert_eq!(
            alap(&g, &lat, 6),
            Err(SchedError::DeadlineTooTight {
                deadline: 6,
                critical_path: 7
            })
        );
    }

    #[test]
    fn mobility_zero_on_critical_path() {
        let (g, lat) = fig1_like();
        let cp = critical_path_length(&g, &lat);
        let m = mobility(&g, &lat, cp).unwrap();
        assert_eq!(m[1], 0);
        assert_eq!(m[3], 0);
        assert_eq!(m[4], 0);
        assert!(m[0] > 0);
        assert_eq!(m.len(), g.len());
    }

    #[test]
    fn mobility_grows_with_relaxed_deadline() {
        let (g, lat) = fig1_like();
        let cp = critical_path_length(&g, &lat);
        let tight = mobility(&g, &lat, cp).unwrap();
        let loose = mobility(&g, &lat, cp + 5).unwrap();
        for i in 0..g.len() {
            assert_eq!(loose[i], tight[i] + 5);
        }
    }

    #[test]
    fn single_op_graph() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::adder(8));
        let g = b.build().unwrap();
        let lat = OpLatencies::uniform(&g, 2);
        assert_eq!(critical_path_length(&g, &lat), 2);
        let s = alap(&g, &lat, 5).unwrap();
        assert_eq!(s.start(OpId::new(0)), 3);
    }

    #[test]
    fn alap_propagates_zero_latency_error() {
        let (g, _) = fig1_like();
        let lat = OpLatencies::from_vec(vec![2, 0, 4, 2, 2]);
        assert_eq!(
            alap(&g, &lat, 100),
            Err(SchedError::ZeroLatency(OpId::new(1)))
        );
    }
}
