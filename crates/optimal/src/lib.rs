//! Optimal datapath allocation for multiple-wordlength systems.
//!
//! The paper's evaluation compares the heuristic against the *optimum*
//! solution of the combined scheduling, resource binding and wordlength
//! selection problem, obtained from the ILP formulation of reference \[5\]
//! solved with `lp_solve`.  This crate reproduces that baseline:
//!
//! * [`IlpAllocator`] builds a time-indexed 0-1 ILP over the variables
//!   `x[o][r][t]` ("operation `o` starts at step `t` on resource type `r`")
//!   plus per-type instance counts `n_r`, and solves it with the
//!   [`mwl_lp`] branch-and-bound solver.  The number of variables grows with
//!   the latency constraint, which is exactly the scaling behaviour the
//!   paper's Table 2 demonstrates.
//! * [`ExhaustiveAllocator`] enumerates the same assignment space by
//!   depth-first search with area pruning.  It is only practical for a
//!   handful of operations and serves as an independent oracle for the ILP
//!   encoding in tests.
//!
//! Both allocators return an ordinary [`mwl_core::Datapath`], so results are
//! directly comparable with the heuristic and validated with the same
//! machinery.
//!
//! *Pipeline position:* the exact oracle of the evaluation (Figures 4–5,
//! Table 2); used by `mwl_bench` only.  See `docs/ARCHITECTURE.md` for the
//! full map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exhaustive;
mod ilp;

pub use exhaustive::ExhaustiveAllocator;
pub use ilp::{IlpAllocator, IlpOutcome, IlpStats, OptError};
