//! Exhaustive (depth-first, area-pruned) optimal allocation for tiny graphs.
//!
//! The search enumerates, for every operation in topological order, every
//! compatible resource type and every feasible start step, maintaining the
//! per-type usage profile.  The area of a partial assignment (sum over types
//! of `area · peak usage`) is a lower bound on any completion, so branches
//! are pruned against the incumbent.  This is exponential and only intended
//! as an independent oracle for the ILP encoding on graphs of up to roughly
//! six operations.

use std::collections::BTreeMap;

use mwl_core::{Datapath, ResourceInstance};
use mwl_model::{CostModel, Cycles, OpId, ResourceType, SequencingGraph};
use mwl_sched::{alap, asap, critical_path_length, OpLatencies, Schedule};

use crate::ilp::OptError;

/// Brute-force optimal allocator (oracle for tests and tiny instances).
#[derive(Debug)]
pub struct ExhaustiveAllocator<'a> {
    cost: &'a dyn CostModel,
    latency_constraint: Cycles,
    node_budget: usize,
}

struct SearchState<'g> {
    graph: &'g SequencingGraph,
    resources: Vec<ResourceType>,
    res_latency: Vec<Cycles>,
    res_area: Vec<u64>,
    order: Vec<OpId>,
    windows: Vec<(Cycles, Cycles)>,
    lambda: Cycles,
    // usage[r][t]
    usage: Vec<Vec<u32>>,
    assignment: Vec<Option<(usize, Cycles)>>,
    best_area: u64,
    best_assignment: Option<Vec<(usize, Cycles)>>,
    nodes: usize,
    node_budget: usize,
}

impl<'a> ExhaustiveAllocator<'a> {
    /// Creates an exhaustive allocator with a default node budget.
    #[must_use]
    pub fn new(cost: &'a dyn CostModel, latency_constraint: Cycles) -> Self {
        ExhaustiveAllocator {
            cost,
            latency_constraint,
            node_budget: 2_000_000,
        }
    }

    /// Sets the search-node budget (the search aborts with
    /// [`OptError::TimeLimit`] when exceeded).
    #[must_use]
    pub fn with_node_budget(mut self, budget: usize) -> Self {
        self.node_budget = budget;
        self
    }

    /// Finds the minimum-area datapath meeting the latency constraint.
    ///
    /// # Errors
    ///
    /// * [`OptError::LatencyUnachievable`] when the constraint is below the
    ///   critical path;
    /// * [`OptError::TimeLimit`] when the node budget is exhausted.
    pub fn allocate(&self, graph: &SequencingGraph) -> Result<Datapath, OptError> {
        let lambda = self.latency_constraint;
        let native = OpLatencies::from_fn(graph, |op| self.cost.native_latency(op.shape()));
        let minimum = critical_path_length(graph, &native);
        if lambda < minimum {
            return Err(OptError::LatencyUnachievable {
                constraint: lambda,
                minimum,
            });
        }
        let resources = graph.extract_resource_types();
        let res_latency: Vec<Cycles> = resources.iter().map(|r| self.cost.latency(r)).collect();
        let res_area: Vec<u64> = resources.iter().map(|r| self.cost.area(r)).collect();
        let early = asap(graph, &native);
        let late = alap(graph, &native, lambda).map_err(|_| OptError::LatencyUnachievable {
            constraint: lambda,
            minimum,
        })?;
        let windows: Vec<(Cycles, Cycles)> = graph
            .op_ids()
            .map(|o| (early.start(o), late.start(o)))
            .collect();

        let mut state = SearchState {
            graph,
            res_latency,
            res_area,
            order: graph.topological_order(),
            windows,
            lambda,
            usage: vec![vec![0; lambda as usize]; resources.len()],
            assignment: vec![None; graph.len()],
            best_area: u64::MAX,
            best_assignment: None,
            nodes: 0,
            node_budget: self.node_budget,
            resources,
        };
        let completed = dfs(&mut state, 0);
        if !completed && state.best_assignment.is_none() {
            return Err(OptError::TimeLimit);
        }
        let Some(best) = state.best_assignment else {
            return Err(OptError::InvalidSolution(
                "no feasible assignment found despite achievable latency".into(),
            ));
        };
        build_datapath(
            graph,
            &state.resources,
            &state.res_latency,
            &best,
            self.cost,
        )
    }
}

/// Returns `false` if the node budget was exhausted.
fn dfs(state: &mut SearchState<'_>, depth: usize) -> bool {
    state.nodes += 1;
    if state.nodes > state.node_budget {
        return false;
    }
    if depth == state.order.len() {
        let area = current_area(state);
        if area < state.best_area {
            state.best_area = area;
            state.best_assignment = Some(
                state
                    .assignment
                    .iter()
                    .map(|a| a.expect("complete assignment"))
                    .collect(),
            );
        }
        return true;
    }
    // Prune on the partial-area lower bound.
    if current_area(state) >= state.best_area {
        return true;
    }
    let op = state.order[depth];
    let shape = state.graph.operation(op).shape();
    let (w_lo, w_hi) = state.windows[op.index()];
    let mut complete = true;
    for ri in 0..state.resources.len() {
        if !state.resources[ri].covers(shape) {
            continue;
        }
        let lat = state.res_latency[ri];
        for t in w_lo..=w_hi {
            if t + lat > state.lambda {
                continue;
            }
            // Precedence with already-assigned predecessors.
            let preds_ok = state.graph.predecessors(op).iter().all(|&p| {
                match state.assignment[p.index()] {
                    Some((pri, pt)) => pt + state.res_latency[pri] <= t,
                    None => true, // predecessor later in topological order is impossible
                }
            });
            if !preds_ok {
                continue;
            }
            // Apply.
            state.assignment[op.index()] = Some((ri, t));
            for step in t..t + lat {
                state.usage[ri][step as usize] += 1;
            }
            complete &= dfs(state, depth + 1);
            for step in t..t + lat {
                state.usage[ri][step as usize] -= 1;
            }
            state.assignment[op.index()] = None;
            if !complete {
                return false;
            }
        }
    }
    complete
}

fn current_area(state: &SearchState<'_>) -> u64 {
    (0..state.resources.len())
        .map(|ri| {
            let peak = state.usage[ri].iter().copied().max().unwrap_or(0);
            state.res_area[ri] * u64::from(peak)
        })
        .sum()
}

fn build_datapath(
    graph: &SequencingGraph,
    resources: &[ResourceType],
    res_latency: &[Cycles],
    assignment: &[(usize, Cycles)],
    cost: &dyn CostModel,
) -> Result<Datapath, OptError> {
    let schedule = Schedule::from_vec(assignment.iter().map(|&(_, t)| t).collect());
    let mut by_type: BTreeMap<usize, Vec<OpId>> = BTreeMap::new();
    for (i, &(ri, _)) in assignment.iter().enumerate() {
        by_type.entry(ri).or_default().push(OpId::new(i as u32));
    }
    let mut instances = Vec::new();
    for (ri, mut ops) in by_type {
        ops.sort_by_key(|&o| schedule.start(o));
        let mut slots: Vec<(Cycles, Vec<OpId>)> = Vec::new();
        for op in ops {
            let s = schedule.start(op);
            let e = s + res_latency[ri];
            match slots.iter_mut().find(|(free, _)| *free <= s) {
                Some((free, list)) => {
                    list.push(op);
                    *free = e;
                }
                None => slots.push((e, vec![op])),
            }
        }
        for (_, ops) in slots {
            instances.push(ResourceInstance::new(resources[ri], ops));
        }
    }
    let datapath = Datapath::assemble(schedule, instances, cost);
    datapath
        .validate(graph, cost)
        .map_err(|e| OptError::InvalidSolution(e.to_string()))?;
    Ok(datapath)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::IlpAllocator;
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
    use mwl_tgff::{TgffConfig, TgffGenerator};

    #[test]
    fn matches_hand_computed_optimum() {
        // Two independent 8x8 muls with slack share one multiplier.
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(8, 8));
        b.add_operation(OpShape::multiplier(8, 8));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let dp = ExhaustiveAllocator::new(&cost, 4).allocate(&g).unwrap();
        assert_eq!(dp.area(), 64);
        let dp = ExhaustiveAllocator::new(&cost, 2).allocate(&g).unwrap();
        assert_eq!(dp.area(), 128);
    }

    #[test]
    fn agrees_with_ilp_on_random_tiny_graphs() {
        let cost = SonicCostModel::default();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(4), 12345);
        for _ in 0..10 {
            let g = generator.generate();
            let native = OpLatencies::from_fn(&g, |op| cost.native_latency(op.shape()));
            let lambda = critical_path_length(&g, &native) + 2;
            let brute = ExhaustiveAllocator::new(&cost, lambda)
                .allocate(&g)
                .unwrap();
            let ilp = IlpAllocator::new(&cost, lambda).allocate(&g).unwrap();
            assert!(ilp.stats.proven_optimal);
            assert_eq!(
                brute.area(),
                ilp.datapath.area(),
                "exhaustive and ILP optimum disagree"
            );
        }
    }

    #[test]
    fn rejects_unachievable_constraint() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(16, 16));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        assert!(matches!(
            ExhaustiveAllocator::new(&cost, 1).allocate(&g),
            Err(OptError::LatencyUnachievable { .. })
        ));
    }

    #[test]
    fn node_budget_exhaustion_is_reported() {
        let mut b = SequencingGraphBuilder::new();
        for _ in 0..6 {
            b.add_operation(OpShape::multiplier(8, 8));
        }
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let result = ExhaustiveAllocator::new(&cost, 12)
            .with_node_budget(3)
            .allocate(&g);
        assert!(matches!(result, Err(OptError::TimeLimit)));
    }
}
