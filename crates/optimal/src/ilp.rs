//! Time-indexed ILP formulation of the combined problem.
//!
//! The optimal baseline of the paper's evaluation (reference \[5\]):
//! binary variables `x[o][r][t]` select a start step and resource type for
//! every operation, instance-count variables `n_r` are driven by peak
//! concurrent usage, and the objective minimises total area.  Variable
//! count grows with the latency constraint — the scaling weakness Figures
//! 4–5 and Table 2 quantify against the heuristic.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

use mwl_core::{Datapath, ResourceInstance};
use mwl_lp::{BranchBoundOptions, LpError, LpProblem, Sense, SolveStatus, VarId, VarKind};
use mwl_model::{CostModel, Cycles, OpId, ResourceType, SequencingGraph};
use mwl_sched::{alap, asap, critical_path_length, OpLatencies, Schedule};

/// Errors produced by the optimal allocators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptError {
    /// The latency constraint is below the minimum achievable latency.
    LatencyUnachievable {
        /// The requested constraint.
        constraint: Cycles,
        /// The minimum achievable latency.
        minimum: Cycles,
    },
    /// The solver hit its time limit before finding any feasible solution.
    TimeLimit,
    /// The underlying LP/ILP solver failed.
    Solver(LpError),
    /// The decoded solution failed validation (indicates an encoding bug).
    InvalidSolution(String),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::LatencyUnachievable {
                constraint,
                minimum,
            } => write!(
                f,
                "latency constraint {constraint} is below the minimum achievable latency {minimum}"
            ),
            OptError::TimeLimit => write!(f, "time limit reached before any feasible solution"),
            OptError::Solver(e) => write!(f, "ILP solver failed: {e}"),
            OptError::InvalidSolution(msg) => write!(f, "decoded solution is invalid: {msg}"),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for OptError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::TimeLimit => OptError::TimeLimit,
            other => OptError::Solver(other),
        }
    }
}

/// Size and effort statistics of one ILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IlpStats {
    /// Number of decision variables in the model.
    pub variables: usize,
    /// Number of constraints in the model.
    pub constraints: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Whether the result was proven optimal (false = best found within the
    /// time limit).
    pub proven_optimal: bool,
}

/// A solved instance: the optimal (or best-found) datapath plus statistics.
#[derive(Debug, Clone)]
pub struct IlpOutcome {
    /// The allocated datapath.
    pub datapath: Datapath,
    /// Model and search statistics.
    pub stats: IlpStats,
}

/// Optimal allocator based on the time-indexed ILP of reference \[5\].
#[derive(Debug)]
pub struct IlpAllocator<'a> {
    cost: &'a dyn CostModel,
    latency_constraint: Cycles,
    time_limit: Option<Duration>,
}

impl<'a> IlpAllocator<'a> {
    /// Creates an allocator for the given cost model and latency constraint.
    #[must_use]
    pub fn new(cost: &'a dyn CostModel, latency_constraint: Cycles) -> Self {
        IlpAllocator {
            cost,
            latency_constraint,
            time_limit: None,
        }
    }

    /// Sets a wall-clock limit for the branch-and-bound search.
    #[must_use]
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Solves the combined problem to optimality (or to the best solution
    /// found within the time limit).
    ///
    /// # Errors
    ///
    /// * [`OptError::LatencyUnachievable`] when the constraint is below the
    ///   graph's critical path;
    /// * [`OptError::TimeLimit`] when the limit expired with no feasible
    ///   solution;
    /// * [`OptError::Solver`] for internal solver failures.
    pub fn allocate(&self, graph: &SequencingGraph) -> Result<IlpOutcome, OptError> {
        let lambda = self.latency_constraint;
        let native = OpLatencies::from_fn(graph, |op| self.cost.native_latency(op.shape()));
        let minimum = critical_path_length(graph, &native);
        if lambda < minimum {
            return Err(OptError::LatencyUnachievable {
                constraint: lambda,
                minimum,
            });
        }

        let resources = graph.extract_resource_types();
        let res_latency: Vec<Cycles> = resources.iter().map(|r| self.cost.latency(r)).collect();
        let res_area: Vec<u64> = resources.iter().map(|r| self.cost.area(r)).collect();

        // Start-time windows from ASAP/ALAP with native latencies (valid
        // outer bounds on any feasible start time).
        let early = asap(graph, &native);
        let late = alap(graph, &native, lambda).map_err(|_| OptError::LatencyUnachievable {
            constraint: lambda,
            minimum,
        })?;

        let mut lp = LpProblem::new(Sense::Minimize);

        // x[o][r][t] variables.
        type Key = (usize, usize, Cycles);
        let mut x: BTreeMap<Key, VarId> = BTreeMap::new();
        for op in graph.op_ids() {
            let shape = graph.operation(op).shape();
            for (ri, r) in resources.iter().enumerate() {
                if !r.covers(shape) {
                    continue;
                }
                let lat = res_latency[ri];
                for t in early.start(op)..=late.start(op) {
                    if t + lat <= lambda {
                        let v = lp.add_binary(0.0);
                        x.insert((op.index(), ri, t), v);
                    }
                }
            }
        }

        // n_r instance-count variables.
        let n_vars: Vec<VarId> = resources
            .iter()
            .enumerate()
            .map(|(ri, _)| {
                let max_instances = graph
                    .operations()
                    .iter()
                    .filter(|o| resources[ri].covers(o.shape()))
                    .count();
                lp.add_var(
                    VarKind::Integer,
                    res_area[ri] as f64,
                    0.0,
                    Some(max_instances as f64),
                )
            })
            .collect();

        // (1) assignment: every operation starts exactly once.
        for op in graph.op_ids() {
            let terms: Vec<(VarId, f64)> = x
                .iter()
                .filter(|((o, _, _), _)| *o == op.index())
                .map(|(_, &v)| (v, 1.0))
                .collect();
            if terms.is_empty() {
                return Err(OptError::InvalidSolution(format!(
                    "operation {op} has no feasible start/resource combination"
                )));
            }
            lp.add_eq(&terms, 1.0);
        }

        // (2) precedence: start(o2) >= start(o1) + latency(chosen resource of o1).
        for edge in graph.edges() {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for (&(o, ri, t), &v) in &x {
                if o == edge.to.index() {
                    terms.push((v, t as f64));
                } else if o == edge.from.index() {
                    terms.push((v, -((t + res_latency[ri]) as f64)));
                }
            }
            lp.add_ge(&terms, 0.0);
        }

        // (3) resource usage: at every step, executing ops on type r <= n_r.
        for (ri, _) in resources.iter().enumerate() {
            for step in 0..lambda {
                let mut terms: Vec<(VarId, f64)> = x
                    .iter()
                    .filter(|(&(_, r, t), _)| r == ri && t <= step && step < t + res_latency[ri])
                    .map(|(_, &v)| (v, 1.0))
                    .collect();
                if terms.is_empty() {
                    continue;
                }
                terms.push((n_vars[ri], -1.0));
                lp.add_le(&terms, 0.0);
            }
        }

        let stats_vars = lp.num_vars();
        let stats_cons = lp.num_constraints();

        let options = BranchBoundOptions {
            time_limit: self.time_limit,
            ..Default::default()
        };
        let solution = lp.solve(options)?;

        let datapath = decode(
            graph,
            &resources,
            &res_latency,
            &x,
            &solution.values,
            self.cost,
        )?;

        Ok(IlpOutcome {
            datapath,
            stats: IlpStats {
                variables: stats_vars,
                constraints: stats_cons,
                nodes: solution.nodes,
                proven_optimal: solution.status == SolveStatus::Optimal,
            },
        })
    }
}

/// Decodes a 0-1 solution vector into a [`Datapath`]: start times and
/// resource types per operation, then interval-partitioning the operations of
/// each type into the minimum number of instances.
fn decode(
    graph: &SequencingGraph,
    resources: &[ResourceType],
    res_latency: &[Cycles],
    x: &BTreeMap<(usize, usize, Cycles), VarId>,
    values: &[f64],
    cost: &dyn CostModel,
) -> Result<Datapath, OptError> {
    let n = graph.len();
    let mut start = vec![None; n];
    let mut chosen_resource = vec![None; n];
    for (&(o, ri, t), &v) in x {
        if values[v.index()] > 0.5 {
            if start[o].is_some() {
                return Err(OptError::InvalidSolution(format!(
                    "operation o{o} assigned more than once"
                )));
            }
            start[o] = Some(t);
            chosen_resource[o] = Some(ri);
        }
    }
    for (o, s) in start.iter().enumerate() {
        if s.is_none() {
            return Err(OptError::InvalidSolution(format!(
                "operation o{o} left unassigned"
            )));
        }
    }
    let schedule = Schedule::from_vec(start.iter().map(|s| s.unwrap_or(0)).collect());

    // Group operations by resource type and pack each group into instances by
    // interval partitioning (greedy over start times — optimal for interval
    // graphs).
    let mut by_type: BTreeMap<usize, Vec<OpId>> = BTreeMap::new();
    for (o, ri) in chosen_resource.iter().enumerate() {
        by_type
            .entry(ri.expect("checked above"))
            .or_default()
            .push(OpId::new(o as u32));
    }
    let mut instances: Vec<ResourceInstance> = Vec::new();
    for (ri, mut ops) in by_type {
        ops.sort_by_key(|&o| schedule.start(o));
        // Greedy assignment to the first instance that is free.
        let mut instance_ops: Vec<Vec<OpId>> = Vec::new();
        let mut instance_free_at: Vec<Cycles> = Vec::new();
        for op in ops {
            let s = schedule.start(op);
            let e = s + res_latency[ri];
            match instance_free_at.iter().position(|&free| free <= s) {
                Some(slot) => {
                    instance_ops[slot].push(op);
                    instance_free_at[slot] = e;
                }
                None => {
                    instance_ops.push(vec![op]);
                    instance_free_at.push(e);
                }
            }
        }
        for ops in instance_ops {
            instances.push(ResourceInstance::new(resources[ri], ops));
        }
    }

    let datapath = Datapath::assemble(schedule, instances, cost);
    datapath
        .validate(graph, cost)
        .map_err(|e| OptError::InvalidSolution(e.to_string()))?;
    Ok(datapath)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_core::{AllocConfig, DpAllocator};
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
    use mwl_tgff::{TgffConfig, TgffGenerator};

    fn lambda_min(graph: &SequencingGraph, cost: &SonicCostModel) -> Cycles {
        let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
        critical_path_length(graph, &native)
    }

    #[test]
    fn single_operation_optimal() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(10, 10));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let out = IlpAllocator::new(&cost, 5).allocate(&g).unwrap();
        assert_eq!(out.datapath.area(), 100);
        assert!(out.stats.proven_optimal);
        assert!(out.stats.variables > 0);
        assert!(out.stats.constraints > 0);
    }

    #[test]
    fn unachievable_constraint_rejected() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(16, 16));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let err = IlpAllocator::new(&cost, 1).allocate(&g).unwrap_err();
        assert!(matches!(err, OptError::LatencyUnachievable { .. }));
    }

    #[test]
    fn sharing_is_found_when_slack_allows() {
        // Two independent 8x8 multiplications: at lambda_min (2) they need two
        // multipliers (area 128); with lambda 4 they share one (area 64).
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(8, 8));
        b.add_operation(OpShape::multiplier(8, 8));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let tight = IlpAllocator::new(&cost, 2).allocate(&g).unwrap();
        assert_eq!(tight.datapath.area(), 128);
        let relaxed = IlpAllocator::new(&cost, 4).allocate(&g).unwrap();
        assert_eq!(relaxed.datapath.area(), 64);
        assert_eq!(relaxed.datapath.num_instances(), 1);
    }

    #[test]
    fn mixed_wordlength_sharing_uses_larger_resource() {
        // An 8x8 and a 12x12 multiplication with slack: optimal shares a
        // single 12x12 multiplier (area 144) instead of two (64 + 144).
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(8, 8));
        b.add_operation(OpShape::multiplier(12, 12));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let out = IlpAllocator::new(&cost, 6).allocate(&g).unwrap();
        assert_eq!(out.datapath.area(), 144);
        assert_eq!(out.datapath.num_instances(), 1);
    }

    #[test]
    fn optimum_never_exceeds_heuristic_area() {
        let cost = SonicCostModel::default();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(5), 777);
        for _ in 0..8 {
            let g = generator.generate();
            let lambda = lambda_min(&g, &cost) + 2;
            let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
                .allocate(&g)
                .unwrap();
            let optimal = IlpAllocator::new(&cost, lambda).allocate(&g).unwrap();
            assert!(optimal.stats.proven_optimal);
            assert!(
                optimal.datapath.area() <= heuristic.datapath_area_for_test(),
                "optimal {} > heuristic {}",
                optimal.datapath.area(),
                heuristic.datapath_area_for_test()
            );
            optimal.datapath.validate(&g, &cost).unwrap();
            assert!(optimal.datapath.latency() <= lambda);
        }
    }

    #[test]
    fn chain_with_precedence_respects_dependences() {
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::multiplier(8, 8));
        let y = b.add_operation(OpShape::adder(16));
        let z = b.add_operation(OpShape::multiplier(10, 8));
        b.add_dependency(x, y).unwrap();
        b.add_dependency(y, z).unwrap();
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let lmin = lambda_min(&g, &cost);
        let out = IlpAllocator::new(&cost, lmin + 3).allocate(&g).unwrap();
        out.datapath.validate(&g, &cost).unwrap();
        assert!(out.datapath.latency() <= lmin + 3);
        // The two multiplications are sequential, so they can share.
        let muls: Vec<_> = out
            .datapath
            .instances()
            .iter()
            .filter(|i| i.resource().class() == mwl_model::ResourceClass::Multiplier)
            .collect();
        assert_eq!(muls.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = OptError::LatencyUnachievable {
            constraint: 2,
            minimum: 5,
        };
        assert!(e.to_string().contains('2'));
        assert!(OptError::TimeLimit.to_string().contains("time limit"));
        let e: OptError = LpError::Infeasible.into();
        assert!(matches!(e, OptError::Solver(_)));
        assert!(e.source().is_some());
        let e: OptError = LpError::TimeLimit.into();
        assert_eq!(e, OptError::TimeLimit);
    }

    /// Helper so the comparison test reads naturally.
    trait AreaForTest {
        fn datapath_area_for_test(&self) -> u64;
    }
    impl AreaForTest for Datapath {
        fn datapath_area_for_test(&self) -> u64 {
            self.area()
        }
    }
}
