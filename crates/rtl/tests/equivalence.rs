//! The backend's headline theorem: for random TGFF graphs across every
//! graph shape and width profile, and for every allocator (heuristic with
//! and without instance merging, uniform-wordlength and two-stage
//! baselines), the cycle-accurate netlist simulation is **bit-identical** to
//! the reference fixed-point evaluation of the source graph — and the
//! netlist's functional-unit area equals the reported datapath area.

use proptest::prelude::*;

use mwl_baselines::{TwoStageAllocator, UniformWordlengthAllocator};
use mwl_core::{AllocConfig, Datapath, DpAllocator};
use mwl_model::{CostModel, Cycles, SequencingGraph, SonicCostModel};
use mwl_rtl::{check_equivalence, emit_verilog, lower_datapath, random_vectors};
use mwl_sched::{critical_path_length, OpLatencies};
use mwl_tgff::{GraphShape, TgffConfig, TgffGenerator, WidthProfile};

fn lambda_min(graph: &SequencingGraph, cost: &SonicCostModel) -> Cycles {
    let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
    critical_path_length(graph, &native)
}

/// Strategy: a random graph covering every shape and width-profile family.
fn graph_strategy() -> impl Strategy<Value = SequencingGraph> {
    (1usize..=12, any::<u64>(), 0u8..=3, 0u8..=1, 0u8..=2).prop_map(
        |(ops, seed, shape, profile, mix)| {
            let shape = match shape {
                0 => GraphShape::Layered,
                1 => GraphShape::Wide,
                2 => GraphShape::Deep,
                _ => GraphShape::Diamond,
            };
            let profile = match profile {
                0 => WidthProfile::Uniform,
                _ => WidthProfile::Mixed { high_fraction: 0.4 },
            };
            let mul_fraction = match mix {
                0 => 0.25,
                1 => 0.5,
                _ => 0.75,
            };
            let config = TgffConfig::with_ops(ops)
                .shape(shape)
                .width_profile(profile)
                .mul_fraction(mul_fraction);
            TgffGenerator::new(config, seed).generate()
        },
    )
}

/// Runs the full lower → simulate → compare pipeline for one datapath.
fn assert_equivalent(
    graph: &SequencingGraph,
    datapath: &Datapath,
    cost: &SonicCostModel,
    seed: u64,
) {
    let vectors = random_vectors(graph, seed, 6);
    let report = check_equivalence(graph, datapath, cost, &vectors)
        .expect("netlist must be bit-identical to the reference evaluation");
    assert_eq!(report.vectors, 6);
    assert_eq!(report.netlist_area, datapath.area());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Heuristic allocations (merging on and off) lower to bit-exact
    /// netlists under tight and relaxed budgets.
    #[test]
    fn heuristic_netlists_are_bit_exact(
        graph in graph_strategy(),
        slack in 0u32..8,
        seed in any::<u64>(),
    ) {
        let cost = SonicCostModel::default();
        let lambda = lambda_min(&graph, &cost) + slack;
        for merging in [true, false] {
            let datapath = DpAllocator::new(
                &cost,
                AllocConfig::new(lambda).with_instance_merging(merging),
            )
            .allocate(&graph)
            .expect("achievable constraint");
            assert_equivalent(&graph, &datapath, &cost, seed);
        }
    }

    /// The lowering makes no heuristic-only assumptions: baseline
    /// allocations go through the same code path and are equally bit-exact.
    #[test]
    fn baseline_netlists_are_bit_exact(
        graph in graph_strategy(),
        slack in 0u32..6,
        seed in any::<u64>(),
    ) {
        let cost = SonicCostModel::default();
        let lambda = lambda_min(&graph, &cost) + slack;
        let two_stage = TwoStageAllocator::new(&cost, lambda)
            .allocate(&graph)
            .expect("two-stage baseline must solve achievable budgets");
        assert_equivalent(&graph, &two_stage, &cost, seed);
        // The uniform baseline can be infeasible under tight budgets; check
        // equivalence whenever it produces a datapath.
        if let Ok(uniform) = UniformWordlengthAllocator::new(&cost, lambda).allocate(&graph) {
            assert_equivalent(&graph, &uniform, &cost, seed);
        }
    }

    /// Structural sanity of every lowered netlist: cell counts match the
    /// datapath, registers fit the value count, and the Verilog emission is
    /// non-empty and deterministic.
    #[test]
    fn lowering_structure_is_consistent(graph in graph_strategy(), slack in 0u32..6) {
        let cost = SonicCostModel::default();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .expect("achievable constraint");
        let netlist = lower_datapath(&graph, &datapath, &cost, "dut").expect("lowerable");
        prop_assert_eq!(netlist.fus.len(), datapath.num_instances());
        prop_assert_eq!(netlist.muxes.len(), 2 * datapath.num_instances());
        prop_assert_eq!(netlist.steps, datapath.latency());
        let stats = netlist.stats();
        prop_assert!(stats.registers <= graph.len());
        prop_assert_eq!(stats.reg_writes, graph.len());
        prop_assert_eq!(stats.mux_arms, 2 * graph.len());
        prop_assert!(!netlist.outputs.is_empty());
        let verilog = emit_verilog(&netlist);
        prop_assert!(verilog.contains("module dut ("));
        prop_assert_eq!(verilog, emit_verilog(&netlist));
    }
}

/// Fixed-seed regression: the counterexample family from the ROADMAP's
/// merging work (seeds 606/1313, loose budgets) lowers and passes
/// equivalence for heuristic, uniform and two-stage allocators alike.
#[test]
fn merge_counterexample_family_is_bit_exact() {
    let cost = SonicCostModel::default();
    for seed in [606u64, 1313] {
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(12), seed);
        for slack in [4u32, 10] {
            let graph = generator.generate();
            let lambda = lambda_min(&graph, &cost) + slack;
            let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
                .allocate(&graph)
                .unwrap();
            assert_equivalent(&graph, &heuristic, &cost, seed);
            let two_stage = TwoStageAllocator::new(&cost, lambda)
                .allocate(&graph)
                .unwrap();
            assert_equivalent(&graph, &two_stage, &cost, seed);
            if let Ok(uniform) = UniformWordlengthAllocator::new(&cost, lambda).allocate(&graph) {
                assert_equivalent(&graph, &uniform, &cost, seed);
            }
        }
    }
}
