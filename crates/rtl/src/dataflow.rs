//! Dataflow semantics of a sequencing graph: operand ports, primary inputs
//! and primary outputs.
//!
//! The paper's sequencing graph `P(O, S)` carries *precedence* edges; to give
//! the allocated datapath a bit-true meaning, the backend fixes a dataflow
//! interpretation shared by the reference evaluator ([`crate::reference`])
//! and the netlist lowering ([`crate::lower`]):
//!
//! * Every operation is **binary**: it has exactly two operand ports.  An
//!   additive operation of width `w` has two `w`-bit ports; an `a×b`-bit
//!   multiplication (normalised `a >= b`) has an `a`-bit port 0 and a
//!   `b`-bit port 1.
//! * The operation's predecessors, in ascending [`OpId`] order, feed its
//!   ports in order.  Predecessors beyond the second are **sequencing-only**
//!   edges: they constrain the schedule but carry no data (a two-port
//!   functional unit cannot consume a third operand).
//! * Ports without a producer are **primary inputs** of the datapath.
//! * Operations without successors are **primary outputs**.
//! * An operation's result width is `w` for additive operations and `a + b`
//!   (the full product) for multiplications; producers that are wider or
//!   narrower than a consumer port pass through an explicit width adapter
//!   (sign-extension on widening, two's-complement truncation on narrowing —
//!   see [`mwl_model::fixedpoint::adapt_width`]).

use mwl_model::{OpId, OpShape, SequencingGraph};

/// Where an operand port gets its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSource {
    /// The result value of another operation of the graph.
    Op(OpId),
    /// The primary input with this index (see [`DataflowMap::inputs`]).
    Input(usize),
}

/// One operand port of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Operand wordlength of the port in bits (the *operation's* width, not
    /// the width of the resource the operation is bound to).
    pub width: u32,
    /// Value source of the port.
    pub source: PortSource,
}

/// A primary input of the datapath: an unfed operand port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// Operation owning the port.
    pub op: OpId,
    /// Port index (0 or 1).
    pub port: usize,
    /// Wordlength of the input in bits.
    pub width: u32,
}

/// The dataflow interpretation of one sequencing graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowMap {
    ports: Vec<[PortSpec; 2]>,
    inputs: Vec<InputSpec>,
    outputs: Vec<OpId>,
    out_widths: Vec<u32>,
}

/// Result wordlength of an operation: its own width for additive shapes, the
/// full product width `a + b` for multiplicative ones.
#[must_use]
pub fn output_width(shape: OpShape) -> u32 {
    match shape {
        OpShape::Additive { width, .. } => width,
        OpShape::Multiplicative { a, b } => a + b,
    }
}

impl DataflowMap {
    /// Builds the dataflow interpretation of a graph.
    #[must_use]
    pub fn new(graph: &SequencingGraph) -> Self {
        let mut ports = Vec::with_capacity(graph.len());
        let mut inputs = Vec::new();
        let mut out_widths = Vec::with_capacity(graph.len());
        for op in graph.op_ids() {
            let shape = graph.operation(op).shape();
            let (w0, w1) = shape.widths();
            let preds = graph.predecessors(op);
            let mut spec = [
                PortSpec {
                    width: w0,
                    source: PortSource::Input(usize::MAX),
                },
                PortSpec {
                    width: w1,
                    source: PortSource::Input(usize::MAX),
                },
            ];
            for (port, slot) in spec.iter_mut().enumerate() {
                if let Some(&p) = preds.get(port) {
                    slot.source = PortSource::Op(p);
                } else {
                    let index = inputs.len();
                    inputs.push(InputSpec {
                        op,
                        port,
                        width: slot.width,
                    });
                    slot.source = PortSource::Input(index);
                }
            }
            ports.push(spec);
            out_widths.push(output_width(shape));
        }
        DataflowMap {
            ports,
            inputs,
            outputs: graph.sinks(),
            out_widths,
        }
    }

    /// The two operand ports of an operation.
    #[must_use]
    pub fn ports(&self, op: OpId) -> &[PortSpec; 2] {
        &self.ports[op.index()]
    }

    /// Primary inputs in canonical order (ascending operation id, then port).
    #[must_use]
    pub fn inputs(&self) -> &[InputSpec] {
        &self.inputs
    }

    /// Primary outputs: the sink operations in ascending id order.
    #[must_use]
    pub fn outputs(&self) -> &[OpId] {
        &self.outputs
    }

    /// Result wordlength of an operation.
    #[must_use]
    pub fn result_width(&self, op: OpId) -> u32 {
        self.out_widths[op.index()]
    }

    /// The data predecessors of an operation (its first two predecessors);
    /// any further predecessors are sequencing-only.
    pub fn data_predecessors(&self, op: OpId) -> impl Iterator<Item = OpId> + '_ {
        self.ports[op.index()]
            .iter()
            .filter_map(|p| match p.source {
                PortSource::Op(id) => Some(id),
                PortSource::Input(_) => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder};

    /// m0(8x6) and m1(4x4) feed a2 = add[12]; a2 feeds s3 = sub[10].
    fn graph() -> SequencingGraph {
        let mut b = SequencingGraphBuilder::new();
        let m0 = b.add_operation(OpShape::multiplier(8, 6));
        let m1 = b.add_operation(OpShape::multiplier(4, 4));
        let a2 = b.add_operation(OpShape::adder(12));
        let s3 = b.add_operation(OpShape::subtractor(10));
        b.add_dependency(m0, a2).unwrap();
        b.add_dependency(m1, a2).unwrap();
        b.add_dependency(a2, s3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ports_and_inputs() {
        let g = graph();
        let map = DataflowMap::new(&g);
        // The multiplications have no predecessors: four primary inputs,
        // plus the subtraction's second port.
        assert_eq!(map.inputs().len(), 5);
        assert_eq!(
            map.inputs()[0],
            InputSpec {
                op: OpId::new(0),
                port: 0,
                width: 8
            }
        );
        assert_eq!(map.inputs()[1].width, 6);
        // Port widths follow the *operation* shape.
        assert_eq!(map.ports(OpId::new(2))[0].width, 12);
        assert_eq!(
            map.ports(OpId::new(2))[0].source,
            PortSource::Op(OpId::new(0))
        );
        assert_eq!(
            map.ports(OpId::new(2))[1].source,
            PortSource::Op(OpId::new(1))
        );
        // The subtraction has one data predecessor and one primary input.
        assert_eq!(
            map.ports(OpId::new(3))[0].source,
            PortSource::Op(OpId::new(2))
        );
        assert!(matches!(
            map.ports(OpId::new(3))[1].source,
            PortSource::Input(_)
        ));
        assert_eq!(
            map.data_predecessors(OpId::new(3)).collect::<Vec<_>>(),
            vec![OpId::new(2)]
        );
    }

    #[test]
    fn result_widths_and_outputs() {
        let g = graph();
        let map = DataflowMap::new(&g);
        assert_eq!(map.result_width(OpId::new(0)), 14); // 8 + 6 full product
        assert_eq!(map.result_width(OpId::new(1)), 8);
        assert_eq!(map.result_width(OpId::new(2)), 12);
        assert_eq!(map.result_width(OpId::new(3)), 10);
        assert_eq!(map.outputs(), &[OpId::new(3)]);
    }

    #[test]
    fn third_predecessor_is_sequencing_only() {
        let mut b = SequencingGraphBuilder::new();
        let x = b.add_operation(OpShape::adder(8));
        let y = b.add_operation(OpShape::adder(8));
        let z = b.add_operation(OpShape::adder(8));
        let s = b.add_operation(OpShape::adder(8));
        b.add_dependency(x, s).unwrap();
        b.add_dependency(y, s).unwrap();
        b.add_dependency(z, s).unwrap();
        let g = b.build().unwrap();
        let map = DataflowMap::new(&g);
        // Only the first two predecessors carry data.
        assert_eq!(
            map.data_predecessors(OpId::new(3)).collect::<Vec<_>>(),
            vec![x, y]
        );
        // z's value is never read: it is still a non-sink operation.
        assert_eq!(map.outputs(), &[s]);
        assert_eq!(map.inputs().len(), 6);
    }
}
