//! The structural netlist IR: functional units, registers, input muxes,
//! width adapters and the schedule-derived controller.
//!
//! A [`Netlist`] is the RTL-level image of one allocated datapath:
//!
//! * one [`FunctionalUnit`] cell per [`mwl_core::ResourceInstance`], built at
//!   the instance's [`ResourceType`] widths;
//! * one [`Mux`] per functional-unit operand port, steering the operands of
//!   the operations time-multiplexed onto the unit;
//! * [`Register`] cells holding result values while they are live across
//!   control steps (registers are shared between same-width values with
//!   disjoint [`mwl_core::ValueLifetime`]s);
//! * explicit [`Adapter`] cells encoding the multiple-wordlength semantics:
//!   sign-extension on widening, two's-complement truncation on narrowing;
//! * an implicit FSM controller — a step counter `0 .. steps`; every mux
//!   arm, register write and functional-unit activation carries the control
//!   steps during which it is selected, which is exactly the decoded output
//!   of that FSM.
//!
//! The IR is interpreted by the cycle-accurate simulator ([`crate::sim`])
//! and printed by the Verilog-2001 emitter ([`crate::verilog`]).

use std::fmt;

use mwl_core::BindingCertificate;
use mwl_model::{Area, AreaBreakdown, CostModel, Cycles, OpId, ResourceType};

/// A combinational value source inside the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Signal {
    /// Primary input with this index.
    Input(usize),
    /// Current value of a register.
    Register(usize),
    /// Output of a width adapter.
    Adapter(usize),
    /// Combinational output of a functional unit.
    FuOutput(usize),
}

/// A primary input port: an operand port of the dataflow that no operation
/// feeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputPort {
    /// Port name, stable across emissions.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// The operation whose operand this input feeds.
    pub op: OpId,
    /// The operand port index (0 or 1) at that operation.
    pub port: usize,
}

/// A primary output port: the registered value of a sink operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPort {
    /// Port name, stable across emissions.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// The sink operation observed by this output.
    pub op: OpId,
    /// The signal driving the output (always a register).
    pub source: Signal,
}

/// One synchronous write into a register, decoded from the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegWrite {
    /// The write happens at the clock edge *closing* this control step.
    pub step: Cycles,
    /// The value written (an adapter over the producing unit's output).
    pub source: Signal,
    /// The operation whose result value this write stores.
    pub op: OpId,
}

/// A result register, possibly shared by several values with disjoint
/// lifetimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Cell name, stable across emissions.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Write schedule, ordered by step.
    pub writes: Vec<RegWrite>,
}

/// The arithmetic function a unit computes during one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuMode {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction (port 0 minus port 1).
    Sub,
    /// Signed multiplication (full product).
    Mul,
}

/// One operation executing on a functional unit during `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuActivation {
    /// The operation being executed.
    pub op: OpId,
    /// First control step of the execution interval.
    pub start: Cycles,
    /// One past the last control step (the result is registered at the edge
    /// closing step `end - 1`).
    pub end: Cycles,
    /// Function computed during the activation.
    pub mode: FuMode,
}

/// An allocated functional unit at its bound resource-wordlength.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalUnit {
    /// Cell name, stable across emissions.
    pub name: String,
    /// The resource-wordlength type the unit implements.
    pub resource: ResourceType,
    /// Index of the corresponding [`mwl_core::ResourceInstance`].
    pub instance: usize,
    /// Width of operand port 0 in bits.
    pub a_width: u32,
    /// Width of operand port 1 in bits.
    pub b_width: u32,
    /// Width of the combinational output in bits (`a + b` for multipliers,
    /// the port width for adders).
    pub out_width: u32,
    /// Activation schedule, ordered by start step.
    pub activations: Vec<FuActivation>,
}

impl FunctionalUnit {
    /// The activation (if any) executing during the given control step.
    #[must_use]
    pub fn active_at(&self, step: Cycles) -> Option<&FuActivation> {
        self.activations
            .iter()
            .find(|a| a.start <= step && step < a.end)
    }
}

/// One steering choice of an operand mux.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxArm {
    /// The operation whose operand is steered.
    pub op: OpId,
    /// First control step during which this arm is selected.
    pub start: Cycles,
    /// One past the last selected control step.
    pub end: Cycles,
    /// The signal steered to the functional-unit port.
    pub source: Signal,
}

/// The input mux of one functional-unit operand port.  When no arm is
/// selected (the unit is idle) the port reads zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mux {
    /// Cell name, stable across emissions.
    pub name: String,
    /// The functional unit this mux feeds.
    pub fu: usize,
    /// The operand port (0 or 1) it feeds.
    pub port: usize,
    /// Output width in bits (the functional unit's port width).
    pub width: u32,
    /// Steering schedule, ordered by start step.
    pub arms: Vec<MuxArm>,
}

impl Mux {
    /// The arm (if any) selected during the given control step.
    #[must_use]
    pub fn selected_at(&self, step: Cycles) -> Option<&MuxArm> {
        self.arms.iter().find(|a| a.start <= step && step < a.end)
    }
}

/// An explicit width adapter: sign-extension when `to_width >= from_width`,
/// truncation to the low bits otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adapter {
    /// Cell name, stable across emissions.
    pub name: String,
    /// The adapted signal.
    pub source: Signal,
    /// Width of the source in bits.
    pub from_width: u32,
    /// Width of the adapter output in bits.
    pub to_width: u32,
}

/// Aggregate cell/bit counts of a netlist, for reporting and for the area
/// cross-check against the datapath's cost-model accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Control steps of the schedule (FSM states).
    pub steps: Cycles,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Functional-unit cells.
    pub fus: usize,
    /// Register cells (after lifetime sharing).
    pub registers: usize,
    /// Total register bits.
    pub register_bits: u64,
    /// Operand muxes.
    pub muxes: usize,
    /// Total mux arms (steering cases) over all muxes.
    pub mux_arms: usize,
    /// Width-adapter cells.
    pub adapters: usize,
    /// Values stored over the run (register writes).
    pub reg_writes: usize,
}

/// The structural netlist of one allocated datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    /// Module name used by the Verilog emitter.
    pub name: String,
    /// Number of control steps (the FSM counts `0 .. steps`).
    pub steps: Cycles,
    /// Primary inputs in canonical (op id, port) order.
    pub inputs: Vec<InputPort>,
    /// Primary outputs in ascending sink-op order.
    pub outputs: Vec<OutputPort>,
    /// Result registers.
    pub registers: Vec<Register>,
    /// Functional units, one per datapath resource instance.
    pub fus: Vec<FunctionalUnit>,
    /// Operand muxes, exactly two per functional unit, in
    /// `(fu, port)`-major order.
    pub muxes: Vec<Mux>,
    /// Width adapters.
    pub adapters: Vec<Adapter>,
    /// Optimality certificate of the register binding: whether the packed
    /// register count provably equals the max-overlap lower bound of the
    /// lifetime interval graph, per width class.
    pub binding_certificate: BindingCertificate,
}

impl Netlist {
    /// The mux feeding the given functional-unit operand port.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn mux(&self, fu: usize, port: usize) -> &Mux {
        let m = &self.muxes[fu * 2 + port];
        debug_assert!(m.fu == fu && m.port == port, "mux layout invariant");
        m
    }

    /// Width in bits of any signal of the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the signal's index is out of range.
    #[must_use]
    pub fn signal_width(&self, signal: Signal) -> u32 {
        match signal {
            Signal::Input(i) => self.inputs[i].width,
            Signal::Register(r) => self.registers[r].width,
            Signal::Adapter(a) => self.adapters[a].to_width,
            Signal::FuOutput(f) => self.fus[f].out_width,
        }
    }

    /// Total implementation area of the *functional units* under the given
    /// cost model — one component of [`area_breakdown`](Self::area_breakdown).
    /// By construction this equals the FU component of the datapath the
    /// netlist was lowered from ([`mwl_core::Datapath::area`], which counts
    /// functional units only); the equivalence checker asserts exactly that.
    #[must_use]
    pub fn fu_area(&self, cost: &dyn CostModel) -> Area {
        self.fus.iter().map(|f| cost.area(&f.resource)).sum()
    }

    /// Total multiplexer input bits: the sum of `width × arms` over muxes
    /// with at least two arms (a single-arm mux is a wire and costs
    /// nothing).
    #[must_use]
    pub fn mux_input_bits(&self) -> u64 {
        self.muxes
            .iter()
            .filter(|m| m.arms.len() >= 2)
            .map(|m| u64::from(m.width) * m.arms.len() as u64)
            .sum()
    }

    /// Splits the netlist's area into functional-unit, register and mux
    /// components using the cost model's [`mwl_model::StorageCosts`].
    ///
    /// Because the lowering and [`mwl_core::Datapath::area_breakdown`] use
    /// the same certified register packing and the same mux structure, the
    /// two breakdowns agree exactly; the equivalence checker asserts that.
    #[must_use]
    pub fn area_breakdown(&self, cost: &dyn CostModel) -> AreaBreakdown {
        let storage = cost.storage_costs();
        let register_bits: u64 = self.registers.iter().map(|r| u64::from(r.width)).sum();
        AreaBreakdown {
            fu: self.fu_area(cost),
            register: register_bits * storage.register_area_per_bit,
            mux: self.mux_input_bits() * storage.mux_area_per_input_bit,
        }
    }

    /// Aggregate cell statistics.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            steps: self.steps,
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            fus: self.fus.len(),
            registers: self.registers.len(),
            register_bits: self.registers.iter().map(|r| u64::from(r.width)).sum(),
            muxes: self.muxes.len(),
            mux_arms: self.muxes.iter().map(|m| m.arms.len()).sum(),
            adapters: self.adapters.len(),
            reg_writes: self.registers.iter().map(|r| r.writes.len()).sum(),
        }
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        writeln!(
            f,
            "netlist {}: {} steps, {} FUs, {} registers ({} bits), {} muxes ({} arms), {} adapters",
            self.name,
            s.steps,
            s.fus,
            s.registers,
            s.register_bits,
            s.muxes,
            s.mux_arms,
            s.adapters
        )?;
        for fu in &self.fus {
            let ops: Vec<String> = fu
                .activations
                .iter()
                .map(|a| format!("{}@{}..{}", a.op, a.start, a.end))
                .collect();
            writeln!(f, "  {} ({}): [{}]", fu.name, fu.resource, ops.join(", "))?;
        }
        for r in &self.registers {
            let vals: Vec<String> = r
                .writes
                .iter()
                .map(|w| format!("{}@{}", w.op, w.step))
                .collect();
            writeln!(f, "  {} [{}b]: [{}]", r.name, r.width, vals.join(", "))?;
        }
        Ok(())
    }
}
