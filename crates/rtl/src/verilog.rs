//! Verilog-2001 emission of a structural netlist.
//!
//! The emitter prints one self-contained synthesisable module per netlist:
//! a step-counter FSM, one combinational always-block per operand mux, one
//! mode decoder per adder unit, continuous assignments for the functional
//! units and width adapters, and synchronous result registers.  The output
//! is fully deterministic for a given netlist — it is golden-file tested —
//! and uses only Verilog-2001 constructs (`signed` vectors, `always @*`,
//! ANSI port lists).

use std::fmt::Write as _;

use crate::netlist::{FuMode, Netlist, Signal};
use mwl_model::ResourceClass;

/// Renders the netlist as one Verilog-2001 module.
#[must_use]
pub fn emit_verilog(netlist: &Netlist) -> String {
    let mut v = String::new();
    let s = netlist.stats();
    let step_width = step_counter_width(netlist);

    let _ = writeln!(
        v,
        "// Structural multiple-wordlength datapath, emitted by mwl_rtl.\n\
         // {} control steps, {} functional units, {} registers ({} bits),\n\
         // {} mux arms, {} width adapters.\n\
         // Protocol: hold rst high for one cycle, then present the primary\n\
         // inputs and keep them stable for {} cycles; the outputs are valid\n\
         // once the step counter reaches {}.",
        s.steps, s.fus, s.registers, s.register_bits, s.mux_arms, s.adapters, s.steps, s.steps
    );
    let _ = writeln!(v, "module {} (", netlist.name);
    let _ = writeln!(v, "  input  wire clk,");
    let _ = write!(v, "  input  wire rst");
    for input in &netlist.inputs {
        let _ = write!(
            v,
            ",\n  input  wire signed [{}:0] {}",
            input.width - 1,
            input.name
        );
    }
    for output in &netlist.outputs {
        let _ = write!(
            v,
            ",\n  output wire signed [{}:0] {}",
            output.width - 1,
            output.name
        );
    }
    let _ = writeln!(v, "\n);");

    // --- Controller: a free-running step counter. ---
    let _ = writeln!(v, "\n  // Controller FSM: step counter 0..{}.", s.steps);
    let _ = writeln!(v, "  reg [{}:0] step;", step_width - 1);
    let _ = writeln!(v, "  always @(posedge clk) begin");
    let _ = writeln!(v, "    if (rst) step <= {step_width}'d0;");
    let _ = writeln!(
        v,
        "    else if (step < {step_width}'d{}) step <= step + {step_width}'d1;",
        s.steps
    );
    let _ = writeln!(v, "  end");

    // --- Declarations. ---
    let _ = writeln!(v, "\n  // Result registers (lifetime-shared).");
    for reg in &netlist.registers {
        let _ = writeln!(v, "  reg signed [{}:0] {};", reg.width - 1, reg.name);
    }
    let _ = writeln!(v, "\n  // Operand muxes and functional-unit outputs.");
    for mux in &netlist.muxes {
        let _ = writeln!(v, "  reg signed [{}:0] {};", mux.width - 1, mux.name);
    }
    for fu in &netlist.fus {
        let _ = writeln!(v, "  wire signed [{}:0] {}_y;", fu.out_width - 1, fu.name);
        if fu.resource.class() == ResourceClass::Adder {
            let _ = writeln!(v, "  reg {}_sub;", fu.name);
        }
    }

    // --- Width adapters. ---
    let _ = writeln!(
        v,
        "\n  // Width adapters: sign-extension on widening, truncation on narrowing."
    );
    for ad in &netlist.adapters {
        let src = signal_name(netlist, ad.source);
        let expr = if ad.to_width > ad.from_width {
            format!(
                "{{{{{}{{{}[{}]}}}}, {}}}",
                ad.to_width - ad.from_width,
                src,
                ad.from_width - 1,
                src
            )
        } else {
            format!("{}[{}:0]", src, ad.to_width - 1)
        };
        let _ = writeln!(
            v,
            "  wire signed [{}:0] {} = {};",
            ad.to_width - 1,
            ad.name,
            expr
        );
    }

    // --- Muxes. ---
    for mux in &netlist.muxes {
        let _ = writeln!(
            v,
            "\n  // Operand port {} of {}.",
            if mux.port == 0 { "a" } else { "b" },
            netlist.fus[mux.fu].name
        );
        let _ = writeln!(v, "  always @* begin");
        let _ = writeln!(v, "    case (step)");
        for arm in &mux.arms {
            let labels = step_labels(step_width, arm.start, arm.end);
            let _ = writeln!(
                v,
                "      {labels}: {} = {}; // {}",
                mux.name,
                signal_name(netlist, arm.source),
                arm.op
            );
        }
        let _ = writeln!(
            v,
            "      default: {} = {{{}{{1'b0}}}};",
            mux.name, mux.width
        );
        let _ = writeln!(v, "    endcase");
        let _ = writeln!(v, "  end");
    }

    // --- Functional units. ---
    for fu in &netlist.fus {
        let _ = writeln!(v, "\n  // {}: {}.", fu.name, fu.resource);
        match fu.resource.class() {
            ResourceClass::Adder => {
                let _ = writeln!(v, "  always @* begin");
                let _ = writeln!(v, "    case (step)");
                for act in fu.activations.iter().filter(|a| a.mode == FuMode::Sub) {
                    let labels = step_labels(step_width, act.start, act.end);
                    let _ = writeln!(v, "      {labels}: {}_sub = 1'b1; // {}", fu.name, act.op);
                }
                let _ = writeln!(v, "      default: {}_sub = 1'b0;", fu.name);
                let _ = writeln!(v, "    endcase");
                let _ = writeln!(v, "  end");
                let _ = writeln!(
                    v,
                    "  assign {n}_y = {n}_sub ? ({a} - {b}) : ({a} + {b});",
                    n = fu.name,
                    a = netlist.mux(fu.instance, 0).name,
                    b = netlist.mux(fu.instance, 1).name
                );
            }
            ResourceClass::Multiplier => {
                let _ = writeln!(
                    v,
                    "  assign {}_y = {} * {};",
                    fu.name,
                    netlist.mux(fu.instance, 0).name,
                    netlist.mux(fu.instance, 1).name
                );
            }
        }
    }

    // --- Register write schedules. ---
    let _ = writeln!(v, "\n  // Synchronous result registers.");
    for reg in &netlist.registers {
        let _ = writeln!(v, "  always @(posedge clk) begin");
        let _ = writeln!(v, "    if (rst) {} <= {{{}{{1'b0}}}};", reg.name, reg.width);
        let _ = writeln!(v, "    else case (step)");
        for w in &reg.writes {
            let _ = writeln!(
                v,
                "      {}'d{}: {} <= {}; // {}",
                step_width,
                w.step,
                reg.name,
                signal_name(netlist, w.source),
                w.op
            );
        }
        let _ = writeln!(v, "      default: {n} <= {n};", n = reg.name);
        let _ = writeln!(v, "    endcase");
        let _ = writeln!(v, "  end");
    }

    // --- Outputs. ---
    let _ = writeln!(v, "\n  // Primary outputs (sink operation values).");
    for out in &netlist.outputs {
        let _ = writeln!(
            v,
            "  assign {} = {}; // {}",
            out.name,
            signal_name(netlist, out.source),
            out.op
        );
    }
    let _ = writeln!(v, "\nendmodule");
    v
}

/// The Verilog identifier driving a signal.
fn signal_name(netlist: &Netlist, signal: Signal) -> String {
    match signal {
        Signal::Input(i) => netlist.inputs[i].name.clone(),
        Signal::Register(r) => netlist.registers[r].name.clone(),
        Signal::Adapter(a) => netlist.adapters[a].name.clone(),
        Signal::FuOutput(f) => format!("{}_y", netlist.fus[f].name),
    }
}

/// Comma-separated case labels for the steps `start..end`.
fn step_labels(step_width: u32, start: u32, end: u32) -> String {
    (start..end)
        .map(|s| format!("{step_width}'d{s}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Counter wide enough to hold the value `steps` (the done state).
fn step_counter_width(netlist: &Netlist) -> u32 {
    let max = u64::from(netlist.steps);
    (64 - max.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_datapath;
    use mwl_core::{AllocConfig, DpAllocator};
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};

    fn emitted() -> String {
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 6));
        let n = b.add_operation(OpShape::multiplier(5, 4));
        let a = b.add_operation(OpShape::adder(14));
        let s = b.add_operation(OpShape::subtractor(12));
        b.add_dependency(m, a).unwrap();
        b.add_dependency(n, a).unwrap();
        b.add_dependency(a, s).unwrap();
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(30))
            .allocate(&g)
            .unwrap();
        let netlist = lower_datapath(&g, &dp, &cost, "example").unwrap();
        emit_verilog(&netlist)
    }

    #[test]
    fn emits_well_formed_module() {
        let text = emitted();
        assert!(text.starts_with("//"));
        assert!(text.contains("module example ("));
        assert!(text.trim_end().ends_with("endmodule"));
        assert!(text.contains("input  wire clk"));
        assert!(text.contains("always @(posedge clk)"));
        assert!(text.contains("always @*"));
        // The subtraction mode decoder is present.
        assert!(text.contains("_sub = 1'b1"));
        // Balanced case/endcase and begin/end.
        assert_eq!(
            text.matches("case (").count(),
            text.matches("endcase").count()
        );
        assert_eq!(
            text.matches("begin").count(),
            text.lines().filter(|l| l.trim() == "end").count()
        );
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(emitted(), emitted());
    }

    #[test]
    fn step_counter_width_covers_done_state() {
        // steps = 1 -> counter must hold value 1 -> 1 bit; steps = 2 -> 2 bits.
        for (steps, width) in [(1u32, 1u32), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4)] {
            let max = u64::from(steps);
            assert_eq!((64 - max.leading_zeros()).max(1), width, "steps={steps}");
        }
    }
}
