//! Lowering an allocated datapath to the structural netlist IR.
//!
//! The lowering consumes the `(SequencingGraph, Datapath)` pair — the
//! allocator's schedule, instances and binding — together with the cost
//! model that the schedule's latencies were computed under, and produces a
//! [`Netlist`]:
//!
//! 1. **Functional units.**  One cell per resource instance at the
//!    *instance's* widths: an operation bound to a wider unit executes at
//!    that unit's wordlength, which is exactly the paper's wordlength
//!    selection.
//! 2. **Registers.**  Every result value is registered at the clock edge
//!    closing its final execution step ([`mwl_core::ValueLifetime::born`]).
//!    Registers are shared: same-width values whose lifetimes do not overlap
//!    are packed onto one register by the certified interval-packing binder
//!    ([`mwl_core::pack_registers`]) over the lifetime intervals from
//!    [`mwl_core::Datapath::value_lifetimes`].  The binder proves its own
//!    optimality — packed register count equals the max-overlap (clique)
//!    lower bound per width class — and the certificate is carried on the
//!    netlist ([`Netlist::binding_certificate`]).
//! 3. **Adapters.**  Each operand passes through at most two explicit width
//!    adapters: producer result width → the *operation's* operand width
//!    (multiple-wordlength semantics: truncate or sign-extend), then the
//!    operation's operand width → the *unit's* port width (always a
//!    sign-extension, because the bound resource covers the operation).
//!    Adapters are deduplicated by `(source, from, to)`.
//! 4. **Muxes & controller.**  Each unit port gets a mux with one arm per
//!    bound operation, selected during the operation's execution interval;
//!    together with the register-write and mode schedules this is the
//!    decoded FSM controller.

use std::collections::BTreeMap;

use mwl_core::{pack_registers, Datapath};
use mwl_model::fixedpoint::MAX_SIM_WORDLENGTH;
use mwl_model::{CostModel, OpKind, ResourceClass, SequencingGraph};

use crate::dataflow::{DataflowMap, PortSource};
use crate::error::RtlError;
use crate::netlist::{
    Adapter, FuActivation, FuMode, FunctionalUnit, InputPort, Mux, MuxArm, Netlist, OutputPort,
    RegWrite, Register, Signal,
};

/// Lowers an allocated datapath into a structural netlist.
///
/// # Errors
///
/// * [`RtlError::InvalidDatapath`] if the datapath fails
///   [`Datapath::validate`] against the graph;
/// * [`RtlError::WidthTooLarge`] if any net would exceed
///   [`MAX_SIM_WORDLENGTH`] bits (multiplier product nets are `a + b` bits
///   wide).
pub fn lower_datapath(
    graph: &SequencingGraph,
    datapath: &Datapath,
    cost: &dyn CostModel,
    module_name: &str,
) -> Result<Netlist, RtlError> {
    datapath.validate(graph, cost)?;
    let map = DataflowMap::new(graph);
    check_widths(graph, datapath, &map)?;

    let bound = datapath.bound_latencies(cost);
    let lifetimes = datapath.value_lifetimes(graph, cost);
    let steps = datapath.schedule().makespan(&bound);

    // --- Functional units, one per instance, at the instance's widths. ---
    let mut fus: Vec<FunctionalUnit> = datapath
        .instances()
        .iter()
        .enumerate()
        .map(|(idx, inst)| {
            let resource = inst.resource();
            let (a, b) = resource.widths();
            let out_width = match resource.class() {
                ResourceClass::Adder => a,
                ResourceClass::Multiplier => a + b,
            };
            let name = match resource.class() {
                ResourceClass::Adder => format!("fu{idx}_add{a}"),
                ResourceClass::Multiplier => format!("fu{idx}_mul{a}x{b}"),
            };
            FunctionalUnit {
                name,
                resource,
                instance: idx,
                a_width: a,
                b_width: b,
                out_width,
                activations: Vec::new(),
            }
        })
        .collect();
    for op in graph.op_ids() {
        let fu = datapath.instance_of(op);
        let start = datapath.schedule().start(op);
        let end = datapath.schedule().end(op, &bound);
        let mode = match graph.operation(op).kind() {
            OpKind::Add => FuMode::Add,
            OpKind::Sub => FuMode::Sub,
            OpKind::Mul => FuMode::Mul,
        };
        fus[fu].activations.push(FuActivation {
            op,
            start,
            end,
            mode,
        });
    }
    for fu in &mut fus {
        fu.activations.sort_by_key(|a| (a.start, a.op));
    }

    // --- Registers: certified interval packing per width class. ---
    let value_widths: Vec<u32> = graph.op_ids().map(|op| map.result_width(op)).collect();
    let binding = pack_registers(&value_widths, &lifetimes);
    let reg_of = &binding.reg_of;
    let mut registers: Vec<Register> = binding
        .widths
        .iter()
        .enumerate()
        .map(|(idx, &width)| Register {
            name: format!("r{idx}_w{width}"),
            width,
            writes: Vec::new(),
        })
        .collect();

    // --- Inputs. ---
    let inputs: Vec<InputPort> = map
        .inputs()
        .iter()
        .enumerate()
        .map(|(i, spec)| InputPort {
            name: format!("in{i}_{}_p{}", spec.op, spec.port),
            width: spec.width,
            op: spec.op,
            port: spec.port,
        })
        .collect();

    // --- Adapters (deduplicated) and operand muxes. ---
    let mut adapters: Vec<Adapter> = Vec::new();
    let mut adapter_index: BTreeMap<(Signal, u32, u32), usize> = BTreeMap::new();
    let mut adapt = |sig: Signal, from: u32, to: u32, adapters: &mut Vec<Adapter>| -> Signal {
        if from == to {
            return sig;
        }
        let key = (sig, from, to);
        if let Some(&idx) = adapter_index.get(&key) {
            return Signal::Adapter(idx);
        }
        let idx = adapters.len();
        adapters.push(Adapter {
            name: format!("ad{idx}_{from}to{to}"),
            source: sig,
            from_width: from,
            to_width: to,
        });
        adapter_index.insert(key, idx);
        Signal::Adapter(idx)
    };

    let mut muxes: Vec<Mux> = fus
        .iter()
        .enumerate()
        .flat_map(|(idx, fu)| {
            [(0usize, fu.a_width), (1usize, fu.b_width)]
                .into_iter()
                .map(move |(port, width)| Mux {
                    name: format!("fu{idx}_op{}", if port == 0 { 'a' } else { 'b' }),
                    fu: idx,
                    port,
                    width,
                    arms: Vec::new(),
                })
        })
        .collect();

    for op in graph.op_ids() {
        let fu = datapath.instance_of(op);
        let start = datapath.schedule().start(op);
        let end = datapath.schedule().end(op, &bound);
        let fu_port_widths = [fus[fu].a_width, fus[fu].b_width];
        for (port, spec) in map.ports(op).iter().enumerate() {
            // Stage 1: bring the source to the operation's operand width
            // (the multiple-wordlength adapter).
            let op_width_sig = match spec.source {
                PortSource::Input(i) => {
                    // Inputs are declared at the operand width already.
                    debug_assert_eq!(inputs[i].width, spec.width);
                    Signal::Input(i)
                }
                PortSource::Op(producer) => {
                    let from = map.result_width(producer);
                    adapt(
                        Signal::Register(reg_of[producer.index()]),
                        from,
                        spec.width,
                        &mut adapters,
                    )
                }
            };
            // Stage 2: sign-extend to the unit's port width (the bound
            // resource covers the operation, so this never narrows).
            let port_width = fu_port_widths[port];
            debug_assert!(port_width >= spec.width, "resource must cover operation");
            let port_sig = adapt(op_width_sig, spec.width, port_width, &mut adapters);
            muxes[fu * 2 + port].arms.push(MuxArm {
                op,
                start,
                end,
                source: port_sig,
            });
        }
    }
    for mux in &mut muxes {
        mux.arms.sort_by_key(|a| (a.start, a.op));
    }

    // --- Register writes: FU output, truncated to the value width. ---
    for op in graph.op_ids() {
        let fu = datapath.instance_of(op);
        let value_width = map.result_width(op);
        let source = adapt(
            Signal::FuOutput(fu),
            fus[fu].out_width,
            value_width,
            &mut adapters,
        );
        let write_step = datapath.schedule().end(op, &bound) - 1;
        registers[reg_of[op.index()]].writes.push(RegWrite {
            step: write_step,
            source,
            op,
        });
    }
    for reg in &mut registers {
        reg.writes.sort_by_key(|w| (w.step, w.op));
        debug_assert!(
            reg.writes.windows(2).all(|w| w[0].step < w[1].step),
            "two values written to one register at the same step"
        );
    }

    // --- Primary outputs: the sink registers. ---
    let outputs: Vec<OutputPort> = map
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, &op)| OutputPort {
            name: format!("out{i}_{op}"),
            width: map.result_width(op),
            op,
            source: Signal::Register(reg_of[op.index()]),
        })
        .collect();

    Ok(Netlist {
        name: module_name.to_string(),
        steps,
        inputs,
        outputs,
        registers,
        fus,
        muxes,
        adapters,
        binding_certificate: binding.certificate,
    })
}

/// Rejects graphs whose nets would exceed the 64-bit simulation limit.
fn check_widths(
    graph: &SequencingGraph,
    datapath: &Datapath,
    map: &DataflowMap,
) -> Result<(), RtlError> {
    for op in graph.op_ids() {
        let value_width = map.result_width(op);
        if value_width > MAX_SIM_WORDLENGTH {
            return Err(RtlError::WidthTooLarge {
                op,
                width: value_width,
            });
        }
        // The bound resource's output net: `A + B` for multipliers.
        let resource = datapath.selected_resource(op);
        let (a, b) = resource.widths();
        let fu_out = match resource.class() {
            ResourceClass::Adder => a,
            ResourceClass::Multiplier => a + b,
        };
        if fu_out > MAX_SIM_WORDLENGTH {
            return Err(RtlError::WidthTooLarge { op, width: fu_out });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_core::{AllocConfig, DpAllocator};
    use mwl_model::{OpId, OpShape, SequencingGraphBuilder, SonicCostModel};

    fn chain_graph() -> SequencingGraph {
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 6));
        let n = b.add_operation(OpShape::multiplier(5, 4));
        let a = b.add_operation(OpShape::adder(14));
        let s = b.add_operation(OpShape::subtractor(12));
        b.add_dependency(m, a).unwrap();
        b.add_dependency(n, a).unwrap();
        b.add_dependency(a, s).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lowering_produces_one_fu_per_instance() {
        let g = chain_graph();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(40))
            .allocate(&g)
            .unwrap();
        let netlist = lower_datapath(&g, &dp, &cost, "dut").unwrap();
        assert_eq!(netlist.fus.len(), dp.num_instances());
        assert_eq!(netlist.muxes.len(), 2 * dp.num_instances());
        // The netlist's *FU component* equals the datapath's FU-only area
        // (the allocator's objective); the full breakdown adds registers
        // and muxes on top when the model prices them.
        assert_eq!(netlist.fu_area(&cost), dp.area());
        assert_eq!(netlist.area_breakdown(&cost).fu, dp.area());
        assert_eq!(netlist.area_breakdown(&cost), dp.area_breakdown(&g, &cost));
        // Every operation appears exactly once as an activation.
        let total: usize = netlist.fus.iter().map(|f| f.activations.len()).sum();
        assert_eq!(total, g.len());
        // Every operation's operand steering appears once per port.
        let arms: usize = netlist.muxes.iter().map(|m| m.arms.len()).sum();
        assert_eq!(arms, 2 * g.len());
        // The netlist schedule spans the datapath latency.
        assert_eq!(netlist.steps, dp.latency());
        assert_eq!(netlist.outputs.len(), 1);
        assert!(netlist.to_string().contains("netlist dut"));
    }

    #[test]
    fn registers_are_shared_only_between_disjoint_lifetimes() {
        let g = chain_graph();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(40))
            .allocate(&g)
            .unwrap();
        let netlist = lower_datapath(&g, &dp, &cost, "dut").unwrap();
        assert!(netlist.registers.len() <= g.len());
        let lifetimes = dp.value_lifetimes(&g, &cost);
        // Reconstruct the op -> register map from the write schedules and
        // check pairwise disjointness within each register.
        for reg in &netlist.registers {
            for i in 0..reg.writes.len() {
                for j in (i + 1)..reg.writes.len() {
                    let a = lifetimes[reg.writes[i].op.index()];
                    let b = lifetimes[reg.writes[j].op.index()];
                    assert!(
                        !a.overlaps(&b),
                        "register {} shared by overlapping lifetimes",
                        reg.name
                    );
                }
            }
        }
    }

    #[test]
    fn register_packing_is_certified_and_matches_the_core_binder() {
        use mwl_core::{clique_lower_bound, left_edge_registers, BindingCertificate};
        use mwl_model::StorageCosts;

        let g = chain_graph();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(40))
            .allocate(&g)
            .unwrap();
        let netlist = lower_datapath(&g, &dp, &cost, "dut").unwrap();
        assert_eq!(netlist.binding_certificate, BindingCertificate::Optimal);

        // The netlist registers are exactly the core binder's packing.
        let binding = dp.register_binding(&g, &cost);
        assert_eq!(netlist.registers.len(), binding.registers());
        assert_eq!(netlist.stats().register_bits, binding.register_bits());

        // Packed count meets the clique lower bound and never loses to the
        // left-edge fallback oracle.
        let widths = mwl_core::result_widths(&g);
        let lifetimes = dp.value_lifetimes(&g, &cost);
        assert_eq!(
            netlist.registers.len(),
            clique_lower_bound(&widths, &lifetimes)
        );
        let (left_edge, _) = left_edge_registers(&widths, &lifetimes);
        assert!(netlist.registers.len() <= left_edge.len());

        // Under priced storage the netlist-level and datapath-level
        // breakdowns agree component by component.
        let priced = SonicCostModel::default().with_storage_costs(StorageCosts::new(3, 2));
        let nb = netlist.area_breakdown(&priced);
        assert_eq!(nb, dp.area_breakdown(&g, &priced));
        assert_eq!(nb.fu, dp.area());
        assert!(nb.register > 0);
        assert_eq!(nb.total(), nb.fu + nb.register + nb.mux);
    }

    #[test]
    fn result_width_agrees_between_dataflow_and_core_storage() {
        for shape in [
            OpShape::adder(7),
            OpShape::subtractor(13),
            OpShape::multiplier(9, 5),
        ] {
            assert_eq!(
                crate::dataflow::output_width(shape),
                mwl_core::storage::result_width(shape)
            );
        }
    }

    #[test]
    fn oversized_product_width_is_rejected() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(40, 30));
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(20))
            .allocate(&g)
            .unwrap();
        let err = lower_datapath(&g, &dp, &cost, "dut").unwrap_err();
        assert_eq!(
            err,
            RtlError::WidthTooLarge {
                op: OpId::new(0),
                width: 70
            }
        );
    }

    #[test]
    fn mismatched_datapath_is_rejected() {
        let g = chain_graph();
        let cost = SonicCostModel::default();
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::adder(4));
        let other = b.build().unwrap();
        let dp = DpAllocator::new(&cost, AllocConfig::new(20))
            .allocate(&other)
            .unwrap();
        assert!(matches!(
            lower_datapath(&g, &dp, &cost, "dut"),
            Err(RtlError::InvalidDatapath(_))
        ));
    }
}
