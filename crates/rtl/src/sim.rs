//! Cycle-accurate, bit-true interpretation of a structural netlist.
//!
//! The simulator executes the netlist exactly as the emitted hardware
//! would: one iteration per control step, combinational evaluation of
//! adapters, muxes and functional units within the step, and synchronous
//! register updates at the closing clock edge.  Multi-cycle operations hold
//! their mux steering for the whole execution interval and their result is
//! captured only at the edge closing the final step — so a value produced by
//! a 3-cycle multiplier is observable exactly from its completion step on,
//! matching the schedule semantics of [`mwl_sched::Schedule`].

use mwl_model::fixedpoint::{adapt_width, wrap_i128_to_width, wrap_to_width};
use mwl_model::Cycles;

use crate::error::RtlError;
use crate::netlist::{FuMode, Netlist, Signal};

/// The result of simulating one stimulus vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Primary-output values (canonical signed), in the netlist's output
    /// order, observed after the final control step.
    pub outputs: Vec<i64>,
    /// Number of clock cycles simulated (= the schedule makespan).
    pub cycles: Cycles,
}

/// Simulates the netlist on one stimulus vector.
///
/// `inputs` supplies one value per primary input, in the netlist's input
/// order; each value is wrapped into its port's wordlength first (so any
/// `i64` is acceptable stimulus).
///
/// # Errors
///
/// Returns [`RtlError::InputCountMismatch`] when the stimulus vector length
/// does not match the number of primary inputs.
pub fn simulate(netlist: &Netlist, inputs: &[i64]) -> Result<SimOutcome, RtlError> {
    if inputs.len() != netlist.inputs.len() {
        return Err(RtlError::InputCountMismatch {
            expected: netlist.inputs.len(),
            actual: inputs.len(),
        });
    }
    let inputs: Vec<i64> = inputs
        .iter()
        .zip(netlist.inputs.iter())
        .map(|(&v, port)| wrap_to_width(v, port.width))
        .collect();

    let mut regs = vec![0i64; netlist.registers.len()];
    for step in 0..netlist.steps {
        // Collect all synchronous writes first, then commit: every write of
        // the step sees the same pre-edge register state.
        let mut writes: Vec<(usize, i64)> = Vec::new();
        for (idx, reg) in netlist.registers.iter().enumerate() {
            for w in &reg.writes {
                if w.step == step {
                    let value = eval(netlist, &inputs, &regs, step, w.source);
                    writes.push((idx, wrap_to_width(value, reg.width)));
                }
            }
        }
        for (idx, value) in writes {
            regs[idx] = value;
        }
    }

    let outputs = netlist
        .outputs
        .iter()
        .map(|o| {
            let v = eval(netlist, &inputs, &regs, netlist.steps, o.source);
            adapt_width(v, netlist.signal_width(o.source), o.width)
        })
        .collect();
    Ok(SimOutcome {
        outputs,
        cycles: netlist.steps,
    })
}

/// Combinational evaluation of a signal during one control step.
///
/// The netlist is acyclic through combinational paths (registers break every
/// cycle), so the recursion terminates; chains are short (mux → adapter →
/// register), so no memoisation is needed.
fn eval(netlist: &Netlist, inputs: &[i64], regs: &[i64], step: Cycles, signal: Signal) -> i64 {
    match signal {
        Signal::Input(i) => inputs[i],
        Signal::Register(r) => regs[r],
        Signal::Adapter(a) => {
            let ad = &netlist.adapters[a];
            adapt_width(
                eval(netlist, inputs, regs, step, ad.source),
                ad.from_width,
                ad.to_width,
            )
        }
        Signal::FuOutput(f) => {
            let fu = &netlist.fus[f];
            let a = port_value(netlist, inputs, regs, step, f, 0);
            let b = port_value(netlist, inputs, regs, step, f, 1);
            let mode = fu.active_at(step).map_or(FuMode::Add, |act| act.mode);
            match mode {
                FuMode::Add => wrap_to_width(a.wrapping_add(b), fu.out_width),
                FuMode::Sub => wrap_to_width(a.wrapping_sub(b), fu.out_width),
                FuMode::Mul => wrap_i128_to_width(i128::from(a) * i128::from(b), fu.out_width),
            }
        }
    }
}

/// The value steered onto a functional-unit operand port during one step
/// (zero when the unit is idle).
fn port_value(
    netlist: &Netlist,
    inputs: &[i64],
    regs: &[i64],
    step: Cycles,
    fu: usize,
    port: usize,
) -> i64 {
    let mux = netlist.mux(fu, port);
    match mux.selected_at(step) {
        Some(arm) => eval(netlist, inputs, regs, step, arm.source),
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_datapath;
    use mwl_core::{AllocConfig, DpAllocator};
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};

    /// (x0 * x1) + (x2 * x3), then minus x4: widths small enough to check by
    /// hand.
    fn lowered() -> (Netlist, usize) {
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 8));
        let n = b.add_operation(OpShape::multiplier(8, 8));
        let a = b.add_operation(OpShape::adder(16));
        let s = b.add_operation(OpShape::subtractor(16));
        b.add_dependency(m, a).unwrap();
        b.add_dependency(n, a).unwrap();
        b.add_dependency(a, s).unwrap();
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(30))
            .allocate(&g)
            .unwrap();
        let netlist = lower_datapath(&g, &dp, &cost, "dut").unwrap();
        let n_inputs = netlist.inputs.len();
        (netlist, n_inputs)
    }

    #[test]
    fn computes_the_dataflow_function() {
        let (netlist, n_inputs) = lowered();
        assert_eq!(n_inputs, 5);
        // (3 * 4) + (5 * 6) - 7 = 35.
        let out = simulate(&netlist, &[3, 4, 5, 6, 7]).unwrap();
        assert_eq!(out.outputs, vec![35]);
        assert_eq!(out.cycles, netlist.steps);
        // Negative operands exercise sign-extension through the adapters.
        let out = simulate(&netlist, &[-3, 4, 5, -6, -7]).unwrap();
        assert_eq!(out.outputs, vec![-12 - 30 + 7]);
    }

    #[test]
    fn overflow_wraps_at_the_result_width() {
        let (netlist, _) = lowered();
        // 127 * 127 = 16129; 16129 + 16129 = 32258 still fits 16 bits.
        let out = simulate(&netlist, &[127, 127, 127, 127, 0]).unwrap();
        assert_eq!(out.outputs, vec![32258]);
        // Subtracting -32768 pushes the 16-bit subtractor past its maximum:
        // 32258 + 32768 = 65026 wraps to 65026 - 65536 = -510.
        let out = simulate(&netlist, &[127, 127, 127, 127, -32768]).unwrap();
        assert_eq!(out.outputs, vec![-510]);
    }

    #[test]
    fn stimulus_is_wrapped_to_the_input_width() {
        let (netlist, _) = lowered();
        // 128 wraps to -128 in the 8-bit input port.
        let a = simulate(&netlist, &[128, 1, 0, 0, 0]).unwrap();
        let b = simulate(&netlist, &[-128, 1, 0, 0, 0]).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn wrong_vector_length_is_rejected() {
        let (netlist, n_inputs) = lowered();
        let err = simulate(&netlist, &[1, 2]).unwrap_err();
        assert_eq!(
            err,
            RtlError::InputCountMismatch {
                expected: n_inputs,
                actual: 2
            }
        );
    }
}
