//! Errors of the RTL backend.

use std::fmt;

use mwl_core::ValidateError;
use mwl_model::OpId;

/// Errors raised while lowering, simulating or checking a datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlError {
    /// A net of the structural netlist would be wider than the bit-true
    /// value helpers support (`mwl_model::fixedpoint::MAX_SIM_WORDLENGTH`
    /// bits).  Multiplier product nets are `a + b` bits wide, so graphs with
    /// very wide multiplications cannot be simulated even though they can be
    /// allocated.
    WidthTooLarge {
        /// The operation whose implementation needs the oversized net.
        op: OpId,
        /// The required net width in bits.
        width: u32,
    },
    /// The datapath failed structural validation against the graph before
    /// lowering; carries the first violated invariant.
    InvalidDatapath(ValidateError),
    /// A stimulus vector has the wrong number of primary-input values.
    InputCountMismatch {
        /// Primary inputs of the netlist.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// The netlist simulation disagreed with the reference evaluation of the
    /// sequencing graph — the bit-true equivalence the backend exists to
    /// establish does not hold.
    OutputMismatch {
        /// Index of the stimulus vector that exposed the divergence.
        vector: usize,
        /// The sink operation whose value diverged.
        op: OpId,
        /// Value computed by the cycle-accurate netlist simulation.
        simulated: i64,
        /// Value computed by the reference fixed-point evaluator.
        reference: i64,
    },
    /// The summed area of the netlist's functional units does not match the
    /// area reported by the datapath.
    AreaMismatch {
        /// Area summed over the netlist's functional-unit cells.
        netlist: u64,
        /// Area reported by [`mwl_core::Datapath::area`].
        datapath: u64,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::WidthTooLarge { op, width } => write!(
                f,
                "operation {op} needs a {width}-bit net, wider than the 64-bit simulation limit"
            ),
            RtlError::InvalidDatapath(e) => write!(f, "datapath invalid before lowering: {e}"),
            RtlError::InputCountMismatch { expected, actual } => write!(
                f,
                "stimulus vector has {actual} values but the netlist has {expected} primary inputs"
            ),
            RtlError::OutputMismatch {
                vector,
                op,
                simulated,
                reference,
            } => write!(
                f,
                "vector {vector}: netlist computed {simulated} for sink {op}, reference computed {reference}"
            ),
            RtlError::AreaMismatch { netlist, datapath } => write!(
                f,
                "netlist functional-unit area {netlist} differs from datapath area {datapath}"
            ),
        }
    }
}

impl std::error::Error for RtlError {}

impl From<ValidateError> for RtlError {
    fn from(e: ValidateError) -> Self {
        RtlError::InvalidDatapath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::OpId;

    #[test]
    fn display_is_informative() {
        let e = RtlError::WidthTooLarge {
            op: OpId::new(3),
            width: 70,
        };
        assert!(e.to_string().contains("o3"));
        assert!(e.to_string().contains("70"));
        let e = RtlError::OutputMismatch {
            vector: 2,
            op: OpId::new(1),
            simulated: 5,
            reference: -5,
        };
        assert!(e.to_string().contains("vector 2"));
        let e = RtlError::AreaMismatch {
            netlist: 10,
            datapath: 12,
        };
        assert!(e.to_string().contains("10"));
        let e = RtlError::InputCountMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("4"));
    }
}
