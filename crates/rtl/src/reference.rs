//! Reference bit-true evaluation of a sequencing graph — the oracle the
//! netlist simulation is checked against.
//!
//! The evaluator executes the dataflow interpretation of
//! [`crate::dataflow`] directly, in topological order, entirely at the
//! *operations'* native wordlengths — it knows nothing about schedules,
//! bindings or shared resources.  Bit-exact agreement between this evaluator
//! and the cycle-accurate netlist simulation is therefore evidence that the
//! allocator's sharing, wordlength selection and steering logic preserve the
//! program's semantics.

use mwl_model::fixedpoint::{adapt_width, wrap_i128_to_width, wrap_to_width, MAX_SIM_WORDLENGTH};
use mwl_model::{OpKind, SequencingGraph};

use crate::dataflow::{DataflowMap, PortSource};
use crate::error::RtlError;

/// The result of evaluating one stimulus vector on the sequencing graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceOutcome {
    /// Result value of every operation (canonical signed at the operation's
    /// result width), indexed by operation id.
    pub values: Vec<i64>,
    /// Values of the sink operations, in ascending sink-id order — the same
    /// order as the netlist's primary outputs.
    pub outputs: Vec<i64>,
}

/// Evaluates the graph on one stimulus vector.
///
/// `inputs` supplies one value per primary input of the dataflow, in
/// canonical (op id, port) order — the same order as
/// [`crate::dataflow::DataflowMap::inputs`] and the lowered netlist's input
/// ports.  Values are wrapped into their input wordlengths first.
///
/// # Errors
///
/// * [`RtlError::InputCountMismatch`] when the vector length is wrong;
/// * [`RtlError::WidthTooLarge`] when an operation's result would exceed 64
///   bits.
pub fn evaluate_reference(
    graph: &SequencingGraph,
    inputs: &[i64],
) -> Result<ReferenceOutcome, RtlError> {
    let map = DataflowMap::new(graph);
    evaluate_with_map(graph, &map, inputs)
}

/// [`evaluate_reference`] with a pre-built dataflow map (avoids rebuilding
/// the map once per stimulus vector).
pub fn evaluate_with_map(
    graph: &SequencingGraph,
    map: &DataflowMap,
    inputs: &[i64],
) -> Result<ReferenceOutcome, RtlError> {
    if inputs.len() != map.inputs().len() {
        return Err(RtlError::InputCountMismatch {
            expected: map.inputs().len(),
            actual: inputs.len(),
        });
    }
    for op in graph.op_ids() {
        let width = map.result_width(op);
        if width > MAX_SIM_WORDLENGTH {
            return Err(RtlError::WidthTooLarge { op, width });
        }
    }
    let inputs: Vec<i64> = inputs
        .iter()
        .zip(map.inputs().iter())
        .map(|(&v, spec)| wrap_to_width(v, spec.width))
        .collect();

    let mut values = vec![0i64; graph.len()];
    for op in graph.topological_order() {
        let ports = map.ports(op);
        let mut operand = [0i64; 2];
        for (slot, spec) in operand.iter_mut().zip(ports.iter()) {
            *slot = match spec.source {
                PortSource::Input(i) => inputs[i],
                PortSource::Op(u) => {
                    adapt_width(values[u.index()], map.result_width(u), spec.width)
                }
            };
        }
        let width = map.result_width(op);
        values[op.index()] = match graph.operation(op).kind() {
            OpKind::Add => wrap_to_width(operand[0].wrapping_add(operand[1]), width),
            OpKind::Sub => wrap_to_width(operand[0].wrapping_sub(operand[1]), width),
            OpKind::Mul => {
                wrap_i128_to_width(i128::from(operand[0]) * i128::from(operand[1]), width)
            }
        };
    }
    let outputs = map.outputs().iter().map(|o| values[o.index()]).collect();
    Ok(ReferenceOutcome { values, outputs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder};

    #[test]
    fn evaluates_an_expression_tree() {
        // (x0 * x1) + (x2 * x3) at 8x8 -> 16-bit products, 16-bit sum.
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 8));
        let n = b.add_operation(OpShape::multiplier(8, 8));
        let a = b.add_operation(OpShape::adder(16));
        b.add_dependency(m, a).unwrap();
        b.add_dependency(n, a).unwrap();
        let g = b.build().unwrap();
        let out = evaluate_reference(&g, &[3, -4, 5, 6]).unwrap();
        assert_eq!(out.values, vec![-12, 30, 18]);
        assert_eq!(out.outputs, vec![18]);
    }

    #[test]
    fn narrowing_consumer_truncates() {
        // A 8x8 multiplication (16-bit product) feeding a 4-bit adder keeps
        // only the low nibble of the product.
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 8));
        let a = b.add_operation(OpShape::adder(4));
        b.add_dependency(m, a).unwrap();
        let g = b.build().unwrap();
        // 7 * 5 = 35 = 0x23; low nibble 3; plus 1 = 4.
        let out = evaluate_reference(&g, &[7, 5, 1]).unwrap();
        assert_eq!(out.outputs, vec![4]);
        // 6 * 6 = 36 = 0x24; low nibble 4; 4 + 7 = 11 wraps to -5 in 4 bits.
        let out = evaluate_reference(&g, &[6, 6, 7]).unwrap();
        assert_eq!(out.outputs, vec![-5]);
    }

    #[test]
    fn subtraction_order_is_port_order() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::subtractor(8));
        let g = b.build().unwrap();
        let out = evaluate_reference(&g, &[10, 3]).unwrap();
        assert_eq!(out.outputs, vec![7]);
    }

    #[test]
    fn wrong_input_count_rejected() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::adder(8));
        let g = b.build().unwrap();
        assert!(matches!(
            evaluate_reference(&g, &[1]),
            Err(RtlError::InputCountMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn oversized_width_rejected() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::multiplier(40, 40));
        let g = b.build().unwrap();
        assert!(matches!(
            evaluate_reference(&g, &[1, 1]),
            Err(RtlError::WidthTooLarge { width: 80, .. })
        ));
    }
}
