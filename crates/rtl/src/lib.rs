//! RTL backend for allocated multiple-wordlength datapaths: structural
//! netlist lowering, cycle-accurate bit-true simulation and Verilog-2001
//! emission.
//!
//! The allocator ([`mwl_core::DpAllocator`]) stops at an abstract
//! [`mwl_core::Datapath`] — a schedule, resource instances and a binding.
//! The paper's actual *output*, however, is hardware: shared functional
//! units fed by steering muxes under an FSM controller, with registers
//! holding values between control steps and width adapters implementing the
//! multiple-wordlength boundaries.  This crate closes that loop:
//!
//! 1. [`lower_datapath`] turns a `(SequencingGraph, Datapath)` pair into a
//!    structural [`Netlist`]: per-instance functional units at their bound
//!    [`mwl_model::ResourceType`] widths, schedule-driven operand muxes,
//!    lifetime-shared result registers and explicit sign-extend/truncate
//!    adapters.
//! 2. [`simulate`] executes the netlist cycle by cycle, bit-true at every
//!    net (two's-complement, wrap-on-overflow — see
//!    [`mwl_model::fixedpoint`]).
//! 3. [`evaluate_reference`] runs the sequencing graph directly in
//!    fixed-point, knowing nothing about schedules or sharing.
//! 4. [`emit_verilog`] prints the netlist as one synthesisable
//!    Verilog-2001 module.
//!
//! The headline property — proptested in `tests/equivalence.rs` across
//! random TGFF graphs, every graph shape and width profile, and heuristic
//! and baseline allocators alike — is that (2) and (3) agree **bit-exactly**
//! on every stimulus vector, and that the netlist's *functional-unit* area
//! component equals the allocator's reported (FU-only) area, with the full
//! [`Netlist::area_breakdown`] agreeing with
//! [`mwl_core::Datapath::area_breakdown`] component by component.
//! [`check_equivalence`] bundles those checks for use by tests and the
//! batch driver (`mwl_driver`).
//!
//! *Pipeline position:* downstream of `mwl_core`; used by `mwl_driver` for
//! opt-in per-job verification and by the `rtl_smoke` harness in
//! `mwl_bench`.  See `docs/ARCHITECTURE.md` for the full map.
//!
//! # Quick start
//!
//! ```
//! use mwl_core::{AllocConfig, DpAllocator};
//! use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
//! use mwl_rtl::{check_equivalence, emit_verilog, lower_datapath, random_vectors};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SequencingGraphBuilder::new();
//! let x = b.add_operation(OpShape::multiplier(8, 8));
//! let y = b.add_operation(OpShape::multiplier(14, 10));
//! let s = b.add_operation(OpShape::adder(24));
//! b.add_dependency(x, s)?;
//! b.add_dependency(y, s)?;
//! let graph = b.build()?;
//!
//! let cost = SonicCostModel::default();
//! let datapath = DpAllocator::new(&cost, AllocConfig::new(12)).allocate(&graph)?;
//!
//! // Lower to a netlist and check it against the reference evaluator.
//! let vectors = random_vectors(&graph, 42, 8);
//! let report = check_equivalence(&graph, &datapath, &cost, &vectors)?;
//! assert_eq!(report.vectors, 8);
//! // The FU component of the netlist equals the allocator's (FU-only)
//! // objective; registers and muxes are priced on top by the breakdown.
//! assert_eq!(report.netlist_area, datapath.area());
//! assert_eq!(report.area_breakdown.fu, datapath.area());
//! assert_eq!(report.certificate, mwl_core::BindingCertificate::Optimal);
//!
//! // Emit synthesisable Verilog.
//! let netlist = lower_datapath(&graph, &datapath, &cost, "mac")?;
//! let verilog = emit_verilog(&netlist);
//! assert!(verilog.contains("module mac ("));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataflow;
mod error;
mod lower;
mod netlist;
mod reference;
mod sim;
mod verilog;

pub use error::RtlError;
pub use lower::lower_datapath;
pub use netlist::{
    Adapter, FuActivation, FuMode, FunctionalUnit, InputPort, Mux, MuxArm, Netlist, NetlistStats,
    OutputPort, RegWrite, Register, Signal,
};
pub use reference::{evaluate_reference, evaluate_with_map, ReferenceOutcome};
pub use sim::{simulate, SimOutcome};
pub use verilog::emit_verilog;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use mwl_core::{BindingCertificate, Datapath};
use mwl_model::{Area, AreaBreakdown, CostModel, SequencingGraph};

use crate::dataflow::DataflowMap;

/// The result of a successful equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Number of stimulus vectors simulated.
    pub vectors: usize,
    /// Number of primary outputs compared per vector.
    pub outputs: usize,
    /// Summed functional-unit area of the netlist (equals the datapath's
    /// FU-only reported area; checked).
    pub netlist_area: Area,
    /// Per-component area of the netlist under the model's storage
    /// coefficients (equals the datapath's breakdown; checked).
    pub area_breakdown: AreaBreakdown,
    /// Optimality certificate of the netlist's register binding.
    pub certificate: BindingCertificate,
    /// Cell statistics of the lowered netlist.
    pub stats: NetlistStats,
}

/// Deterministic random stimulus: `count` vectors with one value per
/// primary input of the graph's dataflow interpretation.
///
/// Values span the full `i64` range; both the simulator and the reference
/// evaluator wrap them into the input wordlengths, so extreme values
/// exercise the wrap boundaries.
#[must_use]
pub fn random_vectors(graph: &SequencingGraph, seed: u64, count: usize) -> Vec<Vec<i64>> {
    let map = DataflowMap::new(graph);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| map.inputs().iter().map(|_| rng.next_u64() as i64).collect())
        .collect()
}

/// Lowers the datapath, simulates every stimulus vector and compares the
/// primary outputs bit-exactly against the reference fixed-point evaluation
/// of the sequencing graph; also cross-checks the netlist's area accounting
/// against the datapath's: the *FU component* of the netlist must equal the
/// datapath's FU-only [`Datapath::area`], and the full per-component
/// [`Netlist::area_breakdown`] must equal
/// [`Datapath::area_breakdown`](mwl_core::Datapath::area_breakdown).
///
/// # Errors
///
/// * lowering errors ([`RtlError::InvalidDatapath`],
///   [`RtlError::WidthTooLarge`]);
/// * [`RtlError::AreaMismatch`] when the area accounting diverges;
/// * [`RtlError::OutputMismatch`] on the first diverging output value;
/// * [`RtlError::InputCountMismatch`] for malformed stimulus.
pub fn check_equivalence(
    graph: &SequencingGraph,
    datapath: &Datapath,
    cost: &dyn CostModel,
    vectors: &[Vec<i64>],
) -> Result<EquivalenceReport, RtlError> {
    let netlist = lower_datapath(graph, datapath, cost, "dut")?;
    // Compare the FU *component* explicitly: `Datapath::area` counts
    // functional units only, so it must match the netlist's FU sum — not
    // the netlist's total once registers and muxes are priced.
    let area_breakdown = netlist.area_breakdown(cost);
    let netlist_area = area_breakdown.fu;
    if netlist_area != datapath.area() {
        return Err(RtlError::AreaMismatch {
            netlist: netlist_area,
            datapath: datapath.area(),
        });
    }
    let datapath_breakdown = datapath.area_breakdown(graph, cost);
    if area_breakdown != datapath_breakdown {
        return Err(RtlError::AreaMismatch {
            netlist: area_breakdown.total(),
            datapath: datapath_breakdown.total(),
        });
    }
    let map = DataflowMap::new(graph);
    for (index, vector) in vectors.iter().enumerate() {
        let simulated = simulate(&netlist, vector)?;
        let reference = evaluate_with_map(graph, &map, vector)?;
        for (out, (&s, &r)) in netlist
            .outputs
            .iter()
            .zip(simulated.outputs.iter().zip(reference.outputs.iter()))
        {
            if s != r {
                return Err(RtlError::OutputMismatch {
                    vector: index,
                    op: out.op,
                    simulated: s,
                    reference: r,
                });
            }
        }
    }
    Ok(EquivalenceReport {
        vectors: vectors.len(),
        outputs: netlist.outputs.len(),
        netlist_area,
        area_breakdown,
        certificate: netlist.binding_certificate,
        stats: netlist.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_core::{AllocConfig, DpAllocator};
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};

    #[test]
    fn check_equivalence_passes_on_a_valid_allocation() {
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(8, 6));
        let n = b.add_operation(OpShape::multiplier(10, 9));
        let a = b.add_operation(OpShape::adder(20));
        b.add_dependency(m, a).unwrap();
        b.add_dependency(n, a).unwrap();
        let g = b.build().unwrap();
        let cost = SonicCostModel::default();
        let dp = DpAllocator::new(&cost, AllocConfig::new(30))
            .allocate(&g)
            .unwrap();
        let vectors = random_vectors(&g, 7, 16);
        assert_eq!(vectors.len(), 16);
        assert_eq!(vectors[0].len(), 4);
        let report = check_equivalence(&g, &dp, &cost, &vectors).unwrap();
        assert_eq!(report.vectors, 16);
        assert_eq!(report.outputs, 1);
        assert_eq!(report.netlist_area, dp.area());
        assert_eq!(report.area_breakdown.fu, dp.area());
        // Default SonicCostModel prices storage at zero, so the breakdown
        // collapses to the FU component.
        assert_eq!(report.area_breakdown.total(), dp.area());
        assert_eq!(report.certificate, BindingCertificate::Optimal);
        assert!(report.stats.fus >= 1);
    }

    #[test]
    fn random_vectors_are_deterministic() {
        let mut b = SequencingGraphBuilder::new();
        b.add_operation(OpShape::adder(8));
        let g = b.build().unwrap();
        assert_eq!(random_vectors(&g, 3, 4), random_vectors(&g, 3, 4));
        assert_ne!(random_vectors(&g, 3, 4), random_vectors(&g, 4, 4));
    }
}
