//! Property tests of the batch engine's determinism guarantee: the
//! [`BatchReport`] of an N-worker run is identical to the 1-worker run on
//! arbitrary TGFF job sets, for arbitrary N.

use proptest::prelude::*;

use mwl_core::AllocConfig;
use mwl_driver::{run_batch, BatchJob, BatchOptions, LatencySpec};
use mwl_model::SonicCostModel;
use mwl_tgff::{GraphShape, TgffConfig, TgffGenerator, WidthProfile};

/// A random job: shape family, size, seed and λ budget.
fn job_strategy() -> impl Strategy<Value = BatchJob> {
    (
        prop_oneof![
            Just(GraphShape::Layered),
            Just(GraphShape::Wide),
            Just(GraphShape::Deep),
            Just(GraphShape::Diamond),
        ],
        2usize..=12,
        0u64..=1000,
        prop_oneof![
            (0u32..=8).prop_map(LatencySpec::RelaxSteps),
            (0u32..=40).prop_map(LatencySpec::RelaxPercent),
        ],
        prop_oneof![Just(true), Just(false)],
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|(shape, ops, seed, latency, merging, mixed)| {
            let mut config = TgffConfig::with_ops(ops).shape(shape);
            if mixed {
                config = config.width_profile(WidthProfile::Mixed { high_fraction: 0.5 });
            }
            let graph = TgffGenerator::new(config, seed).generate();
            BatchJob::new(format!("{shape:?}/{ops}/{seed}"), graph, latency)
                .with_config(AllocConfig::new(0).with_instance_merging(merging))
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The core guarantee: any worker count reproduces the sequential report
    /// bit for bit, with and without the shared cost cache.
    #[test]
    fn n_workers_equal_one_worker(
        jobs in proptest::collection::vec(job_strategy(), 1..10),
        workers in 2usize..=16,
    ) {
        let cost = SonicCostModel::default();
        let sequential = run_batch(&jobs, &cost, &BatchOptions::sequential());
        let parallel = run_batch(&jobs, &cost, &BatchOptions::with_workers(workers));
        prop_assert_eq!(&sequential, &parallel);

        let uncached = run_batch(
            &jobs,
            &cost,
            &BatchOptions::with_workers(workers).with_shared_cost_cache(false),
        );
        prop_assert_eq!(&sequential, &uncached);
    }

    /// Every successful outcome respects its resolved budget, and the
    /// summary is consistent with the outcomes.
    #[test]
    fn outcomes_are_well_formed(
        jobs in proptest::collection::vec(job_strategy(), 1..6),
    ) {
        let cost = SonicCostModel::default();
        let report = run_batch(&jobs, &cost, &BatchOptions::default());
        prop_assert_eq!(report.outcomes.len(), jobs.len());
        let summary = report.summary();
        prop_assert_eq!(summary.jobs, jobs.len());
        prop_assert_eq!(summary.succeeded + summary.failed, summary.jobs);
        // Relative budgets are always feasible.
        prop_assert_eq!(summary.failed, 0);
        let mut area = 0u64;
        for (i, o) in report.outcomes.iter().enumerate() {
            prop_assert_eq!(o.index, i);
            let stats = o.result.as_ref().unwrap();
            prop_assert!(stats.latency <= stats.lambda);
            prop_assert!(stats.instances >= 1);
            area += stats.area;
        }
        prop_assert_eq!(summary.total_area, area);
    }
}
