//! The batch engine's telemetry invariant: observability is write-only.
//!
//! An obs-off run must be bit-identical to a default run; an obs-on run
//! (stage timing or full tracing) must differ **only** in the purely
//! diagnostic [`JobStats::stages`] blocks — stripping those restores the
//! plain report exactly, for every worker count.

use proptest::prelude::*;

use mwl_core::{AllocConfig, PortfolioSpec};
use mwl_driver::{run_batch, run_batch_traced, BatchJob, BatchOptions, BatchReport, LatencySpec};
use mwl_model::SonicCostModel;
use mwl_obs::{chrome_trace_json, ObsMode, TraceSink};
use mwl_tgff::{GraphShape, TgffConfig, TgffGenerator, WidthProfile};

/// Drops the diagnostic stage blocks, leaving the allocation payload.
fn strip_stages(report: &BatchReport) -> BatchReport {
    let mut stripped = report.clone();
    for outcome in &mut stripped.outcomes {
        if let Ok(stats) = &mut outcome.result {
            stats.stages = None;
        }
    }
    stripped
}

/// A random job: shape family, size, seed, λ budget and optional portfolio.
fn job_strategy() -> impl Strategy<Value = BatchJob> {
    (
        prop_oneof![
            Just(GraphShape::Layered),
            Just(GraphShape::Wide),
            Just(GraphShape::Deep),
            Just(GraphShape::Diamond),
        ],
        2usize..=12,
        0u64..=1000,
        prop_oneof![
            (0u32..=8).prop_map(LatencySpec::RelaxSteps),
            (0u32..=40).prop_map(LatencySpec::RelaxPercent),
        ],
        any::<bool>(),
        prop_oneof![Just(None), (0u64..=100, 2usize..=5).prop_map(Some),],
    )
        .prop_map(|(shape, ops, seed, latency, mixed, portfolio)| {
            let mut config = TgffConfig::with_ops(ops).shape(shape);
            if mixed {
                config = config.width_profile(WidthProfile::Mixed { high_fraction: 0.5 });
            }
            let graph = TgffGenerator::new(config, seed).generate();
            let mut job = BatchJob::new(format!("{shape:?}/{ops}/{seed}"), graph, latency)
                .with_config(AllocConfig::new(0));
            if let Some((pseed, variants)) = portfolio {
                job = job.with_portfolio(PortfolioSpec::new(pseed, variants));
            }
            job
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The tentpole invariant: for arbitrary job sets (portfolio jobs
    /// included) and every worker count, stage-mode and trace-mode reports
    /// reduce to the plain report by dropping the stage blocks — and every
    /// succeeded job in an obs-on run actually carries one.
    #[test]
    fn obs_on_equals_obs_off_at_every_worker_count(
        jobs in proptest::collection::vec(job_strategy(), 1..6),
    ) {
        let cost = SonicCostModel::default();
        let plain = run_batch(&jobs, &cost, &BatchOptions::sequential());
        for workers in [1usize, 2, 4] {
            let base = BatchOptions::with_workers(workers);
            let off = run_batch(&jobs, &cost, &base);
            prop_assert_eq!(&plain, &off, "obs-off diverged at {} workers", workers);

            let staged = run_batch(&jobs, &cost, &base.clone().with_obs(ObsMode::Stages));
            for outcome in &staged.outcomes {
                if let Ok(stats) = &outcome.result {
                    prop_assert!(stats.stages.is_some(), "missing stage block");
                    prop_assert!(!stats.stages.unwrap().is_zero(), "empty stage block");
                }
            }
            prop_assert_eq!(&plain, &strip_stages(&staged),
                "stage mode perturbed the report at {} workers", workers);

            let sink = TraceSink::new();
            let traced = run_batch_traced(
                &jobs,
                &cost,
                &base.clone().with_obs(ObsMode::Trace),
                Some(&sink),
            );
            prop_assert_eq!(&plain, &strip_stages(&traced),
                "trace mode perturbed the report at {} workers", workers);
            // Every job contributed at least its solve span.
            prop_assert!(sink.len() >= jobs.len());
        }
    }
}

/// Trace events are well-formed and render to a Chrome trace document with
/// one complete event per span, worker-lane tids, and stable ordering.
#[test]
fn trace_events_render_to_chrome_json() {
    let cost = SonicCostModel::default();
    let mut jobs = Vec::new();
    for (i, shape) in [GraphShape::Layered, GraphShape::Wide, GraphShape::Deep]
        .into_iter()
        .enumerate()
    {
        let mut generator =
            TgffGenerator::new(TgffConfig::with_ops(8 + i).shape(shape), 300 + i as u64);
        jobs.push(BatchJob::new(
            format!("{shape:?}"),
            generator.generate(),
            LatencySpec::RelaxSteps(2),
        ));
    }
    let sink = TraceSink::new();
    let options = BatchOptions::with_workers(2).with_obs(ObsMode::Trace);
    let report = run_batch_traced(&jobs, &cost, &options, Some(&sink));
    assert_eq!(report.summary().failed, 0);

    let events = sink.snapshot();
    assert!(
        events.len() >= jobs.len(),
        "one solve span per job at least"
    );
    assert!(events.iter().any(|e| e.name == "solve"));
    assert!(events.iter().any(|e| e.name == "schedule"));
    for event in &events {
        assert!(!event.name.is_empty());
        assert!(!event.cat.is_empty());
    }

    let json = chrome_trace_json(&events);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"solve\""));
}

/// The JSON report is byte-identical between a default run and an explicit
/// obs-off run, and gains exactly the stage blocks when switched on.
#[test]
fn json_report_is_stable_under_obs() {
    let cost = SonicCostModel::default();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(10), 41);
    let jobs = vec![BatchJob::new(
        "j",
        generator.generate(),
        LatencySpec::RelaxSteps(2),
    )];
    let off = run_batch(&jobs, &cost, &BatchOptions::sequential()).to_json();
    let off_explicit = run_batch(
        &jobs,
        &cost,
        &BatchOptions::sequential().with_obs(ObsMode::Off),
    )
    .to_json();
    assert_eq!(off, off_explicit);
    assert!(!off.contains("\"stages\""));

    let on = run_batch(
        &jobs,
        &cost,
        &BatchOptions::sequential().with_obs(ObsMode::Stages),
    )
    .to_json();
    assert!(on.contains("\"stages\""));
    assert!(on.contains("\"schedule_ns\""));
    assert!(on.contains("\"solve_ns\""));
}
