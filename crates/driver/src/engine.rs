//! The scoped-thread worker pool executing a batch of allocation jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use mwl_core::{CachedCostModel, DpAllocator};
use mwl_model::CostModel;

use crate::job::{BatchJob, BatchOptions};
use crate::report::{BatchReport, JobOutcome, JobStats};

/// Runs every job in the batch and returns the per-job outcomes in
/// submission order.
///
/// Work distribution is dynamic (an atomic cursor over the job list), but
/// each outcome is written to the slot of its submission index, so the
/// returned [`BatchReport`] is **bit-identical for every worker count** —
/// parallelism changes wall-clock time only, never results.  Job failures
/// ([`mwl_core::AllocError`]) are captured per job and never abort the rest
/// of the batch.
///
/// When [`BatchOptions::shared_cost_cache`] is set (the default), the
/// resource costs of every job graph are pre-computed once into a read-only
/// [`CachedCostModel`] that all workers share without locking.
pub fn run_batch<C: CostModel + Sync>(
    jobs: &[BatchJob],
    cost: &C,
    options: &BatchOptions,
) -> BatchReport {
    if jobs.is_empty() {
        return BatchReport {
            outcomes: Vec::new(),
        };
    }

    let mut cache = None;
    if options.shared_cost_cache {
        let mut warmed = CachedCostModel::new(cost);
        for job in jobs {
            warmed.warm_graph(&job.graph);
        }
        cache = Some(warmed);
    }
    let model: &(dyn CostModel + Sync) = match &cache {
        Some(c) => c,
        None => cost,
    };

    let workers = options.workers.max(1).min(jobs.len());
    let cursor = AtomicUsize::new(0);

    // Each worker drains the shared cursor into a private result list; the
    // lists are concatenated and restored to submission order afterwards, so
    // no locks are needed and completion order never leaks into the report.
    let mut collected: Vec<(usize, JobOutcome)> = Vec::with_capacity(jobs.len());
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        local.push((index, run_job(index, job, model)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            collected.extend(handle.join().expect("batch worker panicked"));
        }
    });

    collected.sort_unstable_by_key(|(index, _)| *index);
    let outcomes = collected.into_iter().map(|(_, outcome)| outcome).collect();
    BatchReport { outcomes }
}

/// Solves one job.
fn run_job(index: usize, job: &BatchJob, cost: &(dyn CostModel + Sync)) -> JobOutcome {
    let lambda = job.latency.resolve(&job.graph, cost);
    let mut config = job.config.clone();
    config.latency_constraint = lambda;
    let result = DpAllocator::new(cost, config)
        .allocate_with_stats(&job.graph)
        .map(|outcome| JobStats {
            lambda,
            area: outcome.datapath.area(),
            latency: outcome.datapath.latency(),
            instances: outcome.datapath.num_instances(),
            refinements: outcome.refinements,
            bound_escalations: outcome.bound_escalations,
            merges: outcome.merges,
        });
    JobOutcome {
        index,
        label: job.label.clone(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::LatencySpec;
    use mwl_core::AllocError;
    use mwl_model::SonicCostModel;
    use mwl_tgff::{GraphShape, TgffConfig, TgffGenerator};

    fn job_set() -> Vec<BatchJob> {
        let mut jobs = Vec::new();
        for (i, shape) in [
            GraphShape::Layered,
            GraphShape::Wide,
            GraphShape::Deep,
            GraphShape::Diamond,
        ]
        .into_iter()
        .enumerate()
        {
            let mut generator =
                TgffGenerator::new(TgffConfig::with_ops(8 + i).shape(shape), 100 + i as u64);
            jobs.push(BatchJob::new(
                format!("{shape:?}/{i}"),
                generator.generate(),
                LatencySpec::RelaxSteps((i % 3) as u32),
            ));
        }
        jobs
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let cost = SonicCostModel::default();
        let report = run_batch(&[], &cost, &BatchOptions::default());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.summary().jobs, 0);
    }

    #[test]
    fn batch_solves_every_job_in_order() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let report = run_batch(&jobs, &cost, &BatchOptions::default());
        assert_eq!(report.outcomes.len(), jobs.len());
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.label, jobs[i].label);
            let stats = o.result.as_ref().expect("relative budgets are feasible");
            assert!(stats.latency <= stats.lambda);
            assert!(stats.area > 0);
        }
        assert_eq!(report.summary().failed, 0);
    }

    #[test]
    fn worker_counts_do_not_change_the_report() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let reference = run_batch(&jobs, &cost, &BatchOptions::sequential());
        for workers in [2, 3, 8, 64] {
            let parallel = run_batch(&jobs, &cost, &BatchOptions::with_workers(workers));
            assert_eq!(reference, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn cache_on_and_off_agree() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let cached = run_batch(&jobs, &cost, &BatchOptions::default());
        let uncached = run_batch(
            &jobs,
            &cost,
            &BatchOptions::default().with_shared_cost_cache(false),
        );
        assert_eq!(cached, uncached);
    }

    #[test]
    fn infeasible_job_fails_without_poisoning_the_batch() {
        let cost = SonicCostModel::default();
        let mut jobs = job_set();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(6), 55);
        jobs.insert(
            1,
            BatchJob::new("doomed", generator.generate(), LatencySpec::Absolute(0)),
        );
        let report = run_batch(&jobs, &cost, &BatchOptions::with_workers(3));
        assert_eq!(report.summary().failed, 1);
        assert_eq!(report.summary().succeeded, jobs.len() - 1);
        assert!(matches!(
            report.outcomes[1].result,
            Err(AllocError::LatencyUnachievable { .. })
        ));
    }
}
