//! The scoped-thread worker pool executing a batch of allocation jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Instant;

use mwl_core::AllocScratch;
use mwl_model::CostModel;
use mwl_obs::{ObsMode, TraceSink};

use crate::exec::{batch_cache, solve_job};
use crate::job::{BatchJob, BatchOptions};
use crate::report::{BatchReport, JobOutcome};

/// Runs every job in the batch and returns the per-job outcomes in
/// submission order.
///
/// Work distribution is dynamic (an atomic cursor over the job list), but
/// each outcome is written to the slot of its submission index, so the
/// returned [`BatchReport`] is **bit-identical for every worker count** —
/// parallelism changes wall-clock time only, never results.  Job failures
/// ([`mwl_core::AllocError`]) are captured per job and never abort the rest
/// of the batch.
///
/// When [`BatchOptions::shared_cost_cache`] is set (the default), the
/// resource costs of every job graph are pre-computed once into a read-only
/// [`CachedCostModel`] that all workers share without locking.
pub fn run_batch<C: CostModel + Sync>(
    jobs: &[BatchJob],
    cost: &C,
    options: &BatchOptions,
) -> BatchReport {
    run_batch_traced(jobs, cost, options, None)
}

/// [`run_batch`] with an optional trace collector.
///
/// When [`BatchOptions::obs`] is [`ObsMode::Trace`] and a sink is supplied,
/// every worker drains its per-job trace events into it; all workers share
/// one epoch (timestamp zero) taken before the pool starts, and each worker
/// renders into its own `tid` lane, so [`TraceSink::to_chrome_json`] yields
/// a coherent multi-lane timeline.  The *report* stays bit-identical to an
/// untraced run apart from the purely-diagnostic
/// [`JobStats::stages`](crate::JobStats::stages) blocks — telemetry is
/// write-only for the allocator (pinned by `tests/obs_determinism.rs`).
pub fn run_batch_traced<C: CostModel + Sync>(
    jobs: &[BatchJob],
    cost: &C,
    options: &BatchOptions,
    sink: Option<&TraceSink>,
) -> BatchReport {
    if jobs.is_empty() {
        return BatchReport {
            outcomes: Vec::new(),
        };
    }

    let mut cache = None;
    if options.shared_cost_cache {
        cache = Some(batch_cache(cost, jobs));
    }
    let model: &(dyn CostModel + Sync) = match &cache {
        Some(c) => c,
        None => cost,
    };

    let workers = options.workers.max(1).min(jobs.len());
    let cursor = AtomicUsize::new(0);
    let epoch = Instant::now();

    // Each worker drains the shared cursor into a private result list; the
    // lists are concatenated and restored to submission order afterwards, so
    // no locks are needed and completion order never leaks into the report.
    let mut collected: Vec<(usize, JobOutcome)> = Vec::with_capacity(jobs.len());
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let cursor = &cursor;
                scope.spawn(move || {
                    // One allocation workspace per worker, reused across
                    // jobs: the allocator's inner loop is allocation-free
                    // once the scratch buffers have grown to the largest job.
                    let mut scratch = AllocScratch::new();
                    if options.obs == ObsMode::Trace {
                        scratch.obs.set_trace_context(worker as u64, epoch);
                    }
                    scratch.obs.set_mode(options.obs);
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        local.push((
                            index,
                            solve_job(index, job, model, options.rtl_vectors, &mut scratch),
                        ));
                        if let Some(sink) = sink {
                            sink.append(scratch.obs.drain_events());
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            collected.extend(handle.join().expect("batch worker panicked"));
        }
    });

    collected.sort_unstable_by_key(|(index, _)| *index);
    let outcomes = collected.into_iter().map(|(_, outcome)| outcome).collect();
    BatchReport { outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::LatencySpec;
    use mwl_core::AllocError;
    use mwl_model::SonicCostModel;
    use mwl_tgff::{GraphShape, TgffConfig, TgffGenerator};

    fn job_set() -> Vec<BatchJob> {
        let mut jobs = Vec::new();
        for (i, shape) in [
            GraphShape::Layered,
            GraphShape::Wide,
            GraphShape::Deep,
            GraphShape::Diamond,
        ]
        .into_iter()
        .enumerate()
        {
            let mut generator =
                TgffGenerator::new(TgffConfig::with_ops(8 + i).shape(shape), 100 + i as u64);
            jobs.push(BatchJob::new(
                format!("{shape:?}/{i}"),
                generator.generate(),
                LatencySpec::RelaxSteps((i % 3) as u32),
            ));
        }
        jobs
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let cost = SonicCostModel::default();
        let report = run_batch(&[], &cost, &BatchOptions::default());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.summary().jobs, 0);
    }

    #[test]
    fn batch_solves_every_job_in_order() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let report = run_batch(&jobs, &cost, &BatchOptions::default());
        assert_eq!(report.outcomes.len(), jobs.len());
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.label, jobs[i].label);
            let stats = o.result.as_ref().expect("relative budgets are feasible");
            assert!(stats.latency <= stats.lambda);
            assert!(stats.area > 0);
        }
        assert_eq!(report.summary().failed, 0);
    }

    #[test]
    fn worker_counts_do_not_change_the_report() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let reference = run_batch(&jobs, &cost, &BatchOptions::sequential());
        for workers in [2, 3, 8, 64] {
            let parallel = run_batch(&jobs, &cost, &BatchOptions::with_workers(workers));
            assert_eq!(reference, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn cache_on_and_off_agree() {
        let cost = SonicCostModel::default();
        let jobs = job_set();
        let cached = run_batch(&jobs, &cost, &BatchOptions::default());
        let uncached = run_batch(
            &jobs,
            &cost,
            &BatchOptions::default().with_shared_cost_cache(false),
        );
        assert_eq!(cached, uncached);
    }

    #[test]
    fn rtl_check_is_opt_in_and_passes() {
        let cost = SonicCostModel::default();
        let mut jobs = job_set();
        // Opt half the jobs into the RTL oracle.
        for job in jobs.iter_mut().step_by(2) {
            job.verify_rtl = true;
        }
        let report = run_batch(&jobs, &cost, &BatchOptions::default().with_rtl_vectors(3));
        let summary = report.summary();
        assert_eq!(summary.rtl_checked, jobs.len().div_ceil(2));
        assert_eq!(summary.rtl_passed, summary.rtl_checked);
        for (i, o) in report.outcomes.iter().enumerate() {
            let stats = o.result.as_ref().unwrap();
            if i % 2 == 0 {
                let rtl = stats.rtl.as_ref().expect("opted in");
                assert!(rtl.passed, "job {i}: {:?}", rtl.failure);
                assert_eq!(rtl.vectors, 3);
                assert!(rtl.mux_arms > 0);
            } else {
                assert!(stats.rtl.is_none());
            }
        }
    }

    #[test]
    fn rtl_checked_reports_are_worker_count_invariant() {
        let cost = SonicCostModel::default();
        let mut jobs = job_set();
        for job in &mut jobs {
            job.verify_rtl = true;
        }
        let reference = run_batch(&jobs, &cost, &BatchOptions::sequential());
        for workers in [2, 5] {
            let parallel = run_batch(&jobs, &cost, &BatchOptions::with_workers(workers));
            assert_eq!(reference, parallel, "{workers} workers diverged");
        }
    }

    #[test]
    fn unsimulatable_widths_fail_the_rtl_check_not_the_job() {
        // A 40x30-bit multiplication allocates fine but its 70-bit product
        // net exceeds the 64-bit simulation limit: the job succeeds, the
        // oracle reports failure.
        let cost = SonicCostModel::default();
        let mut b = mwl_model::SequencingGraphBuilder::new();
        b.add_operation(mwl_model::OpShape::multiplier(40, 30));
        let graph = b.build().unwrap();
        let jobs =
            vec![BatchJob::new("wide", graph, LatencySpec::RelaxSteps(0)).with_rtl_check(true)];
        let report = run_batch(&jobs, &cost, &BatchOptions::sequential());
        let summary = report.summary();
        assert_eq!(summary.succeeded, 1);
        assert_eq!(summary.rtl_checked, 1);
        assert_eq!(summary.rtl_passed, 0);
        let rtl = report.outcomes[0]
            .result
            .as_ref()
            .unwrap()
            .rtl
            .as_ref()
            .unwrap();
        assert!(!rtl.passed);
        assert!(rtl.failure.as_ref().unwrap().contains("70-bit"));
    }

    #[test]
    fn infeasible_job_fails_without_poisoning_the_batch() {
        let cost = SonicCostModel::default();
        let mut jobs = job_set();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(6), 55);
        jobs.insert(
            1,
            BatchJob::new("doomed", generator.generate(), LatencySpec::Absolute(0)),
        );
        let report = run_batch(&jobs, &cost, &BatchOptions::with_workers(3));
        assert_eq!(report.summary().failed, 1);
        assert_eq!(report.summary().succeeded, jobs.len() - 1);
        assert!(matches!(
            report.outcomes[1].result,
            Err(AllocError::LatencyUnachievable { .. })
        ));
    }
}
