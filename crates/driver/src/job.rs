//! Batch job descriptions: a graph, a latency budget and allocator options.

use serde::{Deserialize, Serialize};

use mwl_core::{AllocConfig, PortfolioSpec};
use mwl_model::{CostModel, Cycles, SequencingGraph};
use mwl_obs::ObsMode;
use mwl_sched::{critical_path_length, OpLatencies};

/// A latency budget `λ`, either absolute or relative to the graph's minimum
/// achievable latency `λ_min` (its critical path with every operation at its
/// native wordlength).
///
/// Relative specs are resolved per graph when the batch runs, so one spec
/// can be applied uniformly across a whole scenario family of differently
/// sized graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencySpec {
    /// A fixed number of control steps.  May be infeasible for a given
    /// graph, in which case the job fails with
    /// [`AllocError::LatencyUnachievable`](mwl_core::AllocError::LatencyUnachievable)
    /// and the failure is recorded in the batch report.
    Absolute(Cycles),
    /// `λ_min + slack` control steps: always feasible.
    RelaxSteps(Cycles),
    /// `⌈λ_min · (1 + percent/100)⌉` control steps: always feasible.  This is
    /// the relaxation axis of the paper's Figure 3.
    RelaxPercent(u32),
}

impl LatencySpec {
    /// Resolves the spec against a concrete graph and cost model.
    #[must_use]
    pub fn resolve(&self, graph: &SequencingGraph, cost: &dyn CostModel) -> Cycles {
        match *self {
            LatencySpec::Absolute(lambda) => lambda,
            LatencySpec::RelaxSteps(slack) => lambda_min(graph, cost) + slack,
            LatencySpec::RelaxPercent(percent) => {
                let minimum = lambda_min(graph, cost);
                let scaled =
                    (f64::from(minimum) * (1.0 + f64::from(percent) / 100.0)).ceil() as Cycles;
                scaled.max(minimum)
            }
        }
    }
}

fn lambda_min(graph: &SequencingGraph, cost: &dyn CostModel) -> Cycles {
    let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
    critical_path_length(graph, &native)
}

/// One allocation problem in a batch: a sequencing graph, a λ budget and the
/// allocator configuration to solve it with.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable label carried through to the [`crate::BatchReport`]
    /// (e.g. `"diamond/16/seed42"`).
    pub label: String,
    /// The sequencing graph to allocate.
    pub graph: SequencingGraph,
    /// The latency budget, resolved per graph at run time.
    pub latency: LatencySpec,
    /// Allocator options.  The `latency_constraint` field is overwritten
    /// with the resolved [`latency`](Self::latency) when the job runs.
    pub config: AllocConfig,
    /// Run the RTL equivalence oracle on the allocated datapath: lower it to
    /// a structural netlist (`mwl_rtl`), simulate
    /// [`BatchOptions::rtl_vectors`] random stimulus vectors cycle by cycle
    /// and compare bit-exactly against the reference fixed-point evaluation
    /// of the graph, plus a netlist-vs-datapath area cross-check.  Off by
    /// default; results land in [`crate::JobStats::rtl`].
    pub verify_rtl: bool,
    /// Race a portfolio of deterministic allocator variants instead of the
    /// single configured trajectory (see [`mwl_core::portfolio`]).  The
    /// winning variant's datapath becomes the job result — never worse than
    /// the plain configuration, bit-reproducible for a fixed spec — and
    /// portfolio statistics land in [`crate::JobStats::portfolio`].  `None`
    /// (the default) runs the plain allocator.
    pub portfolio: Option<PortfolioSpec>,
}

impl BatchJob {
    /// Creates a job with the default allocator configuration.
    #[must_use]
    pub fn new(label: impl Into<String>, graph: SequencingGraph, latency: LatencySpec) -> Self {
        BatchJob {
            label: label.into(),
            graph,
            latency,
            config: AllocConfig::new(0),
            verify_rtl: false,
            portfolio: None,
        }
    }

    /// Replaces the allocator configuration (its latency constraint is still
    /// overwritten by [`latency`](Self::latency) at run time).
    #[must_use]
    pub fn with_config(mut self, config: AllocConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables or disables the per-job RTL equivalence check.
    #[must_use]
    pub fn with_rtl_check(mut self, enabled: bool) -> Self {
        self.verify_rtl = enabled;
        self
    }

    /// Enables portfolio racing for this job (see
    /// [`mwl_core::portfolio`]).  The winning datapath is deterministic for
    /// a fixed spec regardless of batch worker count.
    #[must_use]
    pub fn with_portfolio(mut self, spec: PortfolioSpec) -> Self {
        self.portfolio = Some(spec);
        self
    }
}

/// How a batch is executed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOptions {
    /// Number of worker threads.  Clamped to `1..=jobs.len()` when the batch
    /// runs; the *results* are guaranteed identical for every value.
    pub workers: usize,
    /// Pre-compute a shared read-only resource-cost cache over all job
    /// graphs before spawning workers (see [`mwl_core::CachedCostModel`]).
    /// On by default.
    pub shared_cost_cache: bool,
    /// Number of random stimulus vectors simulated per job when
    /// [`BatchJob::verify_rtl`] is set (clamped to at least 1 at run time).
    pub rtl_vectors: usize,
    /// Stage-level telemetry mode (see [`mwl_obs::StageRecorder`]).  Off by
    /// default; [`ObsMode::Stages`] fills [`crate::JobStats::stages`] per
    /// job, [`ObsMode::Trace`] additionally emits Chrome trace events
    /// (collected via [`crate::run_batch_traced`]).  Guaranteed
    /// non-perturbing: datapath results are bit-identical in every mode.
    pub obs: ObsMode,
}

impl BatchOptions {
    /// Options with an explicit worker count.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        BatchOptions {
            workers: workers.max(1),
            ..BatchOptions::default()
        }
    }

    /// Options with a single worker (the sequential reference execution).
    #[must_use]
    pub fn sequential() -> Self {
        BatchOptions::with_workers(1)
    }

    /// Enables or disables the shared cost cache.
    #[must_use]
    pub fn with_shared_cost_cache(mut self, enabled: bool) -> Self {
        self.shared_cost_cache = enabled;
        self
    }

    /// Sets the number of stimulus vectors per RTL-checked job.
    #[must_use]
    pub fn with_rtl_vectors(mut self, vectors: usize) -> Self {
        self.rtl_vectors = vectors.max(1);
        self
    }

    /// Sets the stage-level telemetry mode.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsMode) -> Self {
        self.obs = obs;
        self
    }
}

impl Default for BatchOptions {
    /// One worker per available hardware thread, shared cost cache on, four
    /// stimulus vectors per RTL-checked job.
    fn default() -> Self {
        BatchOptions {
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            shared_cost_cache: true,
            rtl_vectors: 4,
            obs: ObsMode::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};

    fn chain() -> SequencingGraph {
        let mut b = SequencingGraphBuilder::new();
        let m = b.add_operation(OpShape::multiplier(16, 16));
        let a = b.add_operation(OpShape::adder(32));
        b.add_dependency(m, a).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn latency_specs_resolve() {
        let g = chain();
        let cost = SonicCostModel::default();
        // λ_min = ceil(32/8) + 2 = 6.
        assert_eq!(LatencySpec::Absolute(9).resolve(&g, &cost), 9);
        assert_eq!(LatencySpec::RelaxSteps(0).resolve(&g, &cost), 6);
        assert_eq!(LatencySpec::RelaxSteps(4).resolve(&g, &cost), 10);
        assert_eq!(LatencySpec::RelaxPercent(0).resolve(&g, &cost), 6);
        assert_eq!(LatencySpec::RelaxPercent(30).resolve(&g, &cost), 8); // ceil(7.8)
    }

    #[test]
    fn options_clamp_and_default() {
        assert_eq!(BatchOptions::with_workers(0).workers, 1);
        assert_eq!(BatchOptions::sequential().workers, 1);
        assert!(BatchOptions::default().workers >= 1);
        assert!(BatchOptions::default().shared_cost_cache);
        assert!(
            !BatchOptions::sequential()
                .with_shared_cost_cache(false)
                .shared_cost_cache
        );
        assert_eq!(BatchOptions::default().rtl_vectors, 4);
        assert_eq!(BatchOptions::default().with_rtl_vectors(0).rtl_vectors, 1);
        assert_eq!(BatchOptions::default().with_rtl_vectors(9).rtl_vectors, 9);
        assert_eq!(BatchOptions::default().obs, ObsMode::Off);
        assert_eq!(
            BatchOptions::sequential().with_obs(ObsMode::Stages).obs,
            ObsMode::Stages
        );
    }

    #[test]
    fn job_builder() {
        let job = BatchJob::new("j0", chain(), LatencySpec::RelaxSteps(2))
            .with_config(AllocConfig::new(0).with_instance_merging(false));
        assert_eq!(job.label, "j0");
        assert!(!job.config.instance_merging);
        assert!(!job.verify_rtl);
        assert!(job.portfolio.is_none());
        let job = job
            .with_rtl_check(true)
            .with_portfolio(PortfolioSpec::new(7, 6));
        assert!(job.verify_rtl);
        assert_eq!(job.portfolio, Some(PortfolioSpec::new(7, 6)));
    }
}
