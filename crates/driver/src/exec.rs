//! The shared submission core: solving one job and building shared caches.
//!
//! Both front ends of the engine go through this module — the batch driver
//! ([`crate::run_batch`]) fans a fixed job list across a cursor-fed pool,
//! while the allocation service (`mwl_serve`) feeds a long-lived worker pool
//! from a network queue.  Each worker, in either front end, owns one
//! persistent [`AllocScratch`] and calls [`solve_job`] per job against a
//! shared read-only [`CachedCostModel`]; keeping the execution path in one
//! place is what makes the two front ends bit-identical for the same jobs
//! (regression-tested in `mwl_serve`'s parity suite).

#[cfg(test)]
use mwl_core::run_portfolio;
use mwl_core::{
    run_portfolio_with_scratch, AllocScratch, CachedCostModel, DpAllocator, PortfolioStats,
};
use mwl_model::{AreaBreakdown, CostModel, ResourceType};
use mwl_obs::{ArgValue, Stage};

use crate::job::BatchJob;
use crate::report::{JobOutcome, JobStats, RtlCheck};

/// Solves one job, optionally running the RTL equivalence oracle on the
/// resulting datapath.
///
/// This is the whole per-job execution path shared by every front end: the
/// λ budget is resolved against the graph, the allocator runs through the
/// caller's persistent `scratch`, and failures are captured in the returned
/// [`JobOutcome`] rather than propagated.  `index` becomes
/// [`JobOutcome::index`] and seeds the RTL stimulus when
/// [`BatchJob::verify_rtl`] is set, so results depend only on the job and
/// its index — never on which worker ran it.
#[must_use]
pub fn solve_job(
    index: usize,
    job: &BatchJob,
    cost: &(dyn CostModel + Sync),
    rtl_vectors: usize,
    scratch: &mut AllocScratch,
) -> JobOutcome {
    let lambda = job.latency.resolve(&job.graph, cost);
    let mut config = job.config.clone();
    config.latency_constraint = lambda;
    let solve_timer = scratch.obs.start();
    // Portfolio jobs race the variants sequentially here (workers = 1): the
    // batch is already parallel across jobs, and portfolio results are
    // worker-count-invariant by construction, so nothing observable changes.
    // Racing through the caller's scratch credits each variant's wall time
    // to the scratch's stage recorder.
    let solved = match job.portfolio {
        Some(spec) => run_portfolio_with_scratch(cost, &job.graph, &config, spec, 1, scratch).map(
            |portfolio| {
                let stats = PortfolioStats::from_outcome(spec.seed, &portfolio);
                (portfolio.best, Some(stats))
            },
        ),
        None => DpAllocator::new(cost, config)
            .allocate_with_scratch(&job.graph, scratch)
            .map(|outcome| (outcome, None)),
    };
    let mut result = match solved {
        Ok((outcome, portfolio)) => {
            // One register binding serves both the certificate and the
            // breakdown (Datapath::area_breakdown would bind a second time
            // under non-zero storage coefficients).
            let storage_timer = scratch.obs.start();
            let binding = outcome.datapath.register_binding(&job.graph, cost);
            scratch.obs.stop(Stage::Storage, storage_timer);
            let storage = cost.storage_costs();
            let rtl = job.verify_rtl.then(|| {
                let rtl_timer = scratch.obs.start();
                let check = rtl_check(index, job, &outcome.datapath, cost, rtl_vectors);
                scratch.obs.stop(Stage::Rtl, rtl_timer);
                check
            });
            Ok(JobStats {
                lambda,
                area: outcome.datapath.area(),
                area_breakdown: AreaBreakdown {
                    fu: outcome.datapath.area(),
                    register: binding.register_bits() * storage.register_area_per_bit,
                    mux: outcome.datapath.mux_input_bits() * storage.mux_area_per_input_bit,
                },
                certificate: binding.certificate,
                latency: outcome.datapath.latency(),
                instances: outcome.datapath.num_instances(),
                refinements: outcome.refinements,
                bound_escalations: outcome.bound_escalations,
                merges: outcome.merges,
                rtl,
                portfolio,
                stages: None,
            })
        }
        Err(e) => Err(e),
    };
    scratch.obs.stop_with(
        Stage::Solve,
        solve_timer,
        vec![("job", ArgValue::Int(index as i64))],
    );
    // Drain the recorder unconditionally so one job's timing can never leak
    // into the next; attach it to the stats only when recording was on.
    let stages = scratch.obs.take_stages();
    if scratch.obs.enabled() {
        if let Ok(stats) = &mut result {
            stats.stages = Some(stages);
        }
    }
    JobOutcome {
        index,
        label: job.label.clone(),
        result,
    }
}

/// Builds the shared read-only cost cache for a fixed job list: every graph
/// is warmed before any worker starts, so lookups never need a lock.
#[must_use]
pub fn batch_cache<'a>(cost: &'a (dyn CostModel + Sync), jobs: &[BatchJob]) -> CachedCostModel<'a> {
    let mut cache = CachedCostModel::new(cost);
    for job in jobs {
        cache.warm_graph(&job.graph);
    }
    cache
}

/// Builds a shared read-only cost cache over the full width *grid* up to
/// `max_width` bits — every adder width and every `a×b` multiplier shape.
///
/// This is the cache for front ends whose graphs arrive *after* the workers
/// start (the allocation service): the table cannot be warmed per graph
/// without locking, but a grid warmed once at startup covers every resource
/// type — including the component-wise-max joins synthesised by the merge
/// pass — for any graph whose operand widths stay within `max_width`.
/// Wider queries safely fall through to the wrapped model and are counted
/// as misses.
#[must_use]
pub fn width_grid_cache(cost: &(dyn CostModel + Sync), max_width: u32) -> CachedCostModel<'_> {
    let mut cache = CachedCostModel::new(cost);
    let max_width = max_width.max(1);
    cache.warm_types((1..=max_width).map(ResourceType::adder));
    cache.warm_types(
        (1..=max_width).flat_map(|a| (1..=max_width).map(move |b| ResourceType::multiplier(a, b))),
    );
    cache
}

/// Runs the RTL oracle: lower the datapath, simulate random stimulus and
/// compare bit-exactly against the reference evaluation of the graph.
///
/// The stimulus seed is the job's submission index, so reports stay
/// bit-identical for every worker count.
fn rtl_check(
    index: usize,
    job: &BatchJob,
    datapath: &mwl_core::Datapath,
    cost: &(dyn CostModel + Sync),
    rtl_vectors: usize,
) -> RtlCheck {
    let vectors = mwl_rtl::random_vectors(&job.graph, index as u64, rtl_vectors.max(1));
    match mwl_rtl::check_equivalence(&job.graph, datapath, cost, &vectors) {
        Ok(report) => RtlCheck {
            passed: true,
            vectors: report.vectors,
            registers: report.stats.registers,
            mux_arms: report.stats.mux_arms,
            adapters: report.stats.adapters,
            certificate: Some(report.certificate),
            failure: None,
        },
        Err(e) => RtlCheck {
            passed: false,
            vectors: vectors.len(),
            registers: 0,
            mux_arms: 0,
            adapters: 0,
            certificate: None,
            failure: Some(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::LatencySpec;
    use mwl_model::SonicCostModel;
    use mwl_tgff::{TgffConfig, TgffGenerator};

    #[test]
    fn solve_job_matches_direct_allocation() {
        let cost = SonicCostModel::default();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(9), 31);
        let job = BatchJob::new("j", generator.generate(), LatencySpec::RelaxSteps(2));
        let mut scratch = AllocScratch::new();
        let outcome = solve_job(5, &job, &cost, 1, &mut scratch);
        assert_eq!(outcome.index, 5);
        assert_eq!(outcome.label, "j");
        let stats = outcome.result.expect("relative budget is feasible");
        assert!(stats.latency <= stats.lambda);
        assert!(stats.rtl.is_none());
        // Reusing the scratch across calls changes nothing.
        let again = solve_job(5, &job, &cost, 1, &mut scratch);
        assert_eq!(again.result.unwrap(), stats);
    }

    #[test]
    fn portfolio_job_reports_winner_stats() {
        let cost = SonicCostModel::default();
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(10), 77);
        let graph = generator.generate();
        let spec = mwl_core::PortfolioSpec::new(9, 8);
        let job =
            BatchJob::new("p", graph.clone(), LatencySpec::RelaxSteps(3)).with_portfolio(spec);
        let mut scratch = AllocScratch::new();
        let stats = solve_job(0, &job, &cost, 1, &mut scratch)
            .result
            .expect("relative budget is feasible");

        // The job result is exactly the portfolio winner, and the stats
        // block is the outcome's summary.
        let mut config = job.config.clone();
        config.latency_constraint = job.latency.resolve(&graph, &cost);
        let reference = run_portfolio(&cost, &graph, &config, spec, 1).unwrap();
        assert_eq!(stats.area, reference.best.datapath.area());
        assert_eq!(stats.latency, reference.best.datapath.latency());
        assert_eq!(
            stats.portfolio,
            Some(PortfolioStats::from_outcome(spec.seed, &reference))
        );

        // A plain job on the same graph never beats the portfolio.
        let plain_job = BatchJob::new("q", graph, LatencySpec::RelaxSteps(3));
        let plain = solve_job(0, &plain_job, &cost, 1, &mut scratch)
            .result
            .unwrap();
        assert!(stats.area <= plain.area);
        assert!(plain.portfolio.is_none());
    }

    #[test]
    fn width_grid_cache_covers_in_range_graphs() {
        let cost = SonicCostModel::default();
        let cache = width_grid_cache(&cost, 24);
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(10), 9);
        let graph = generator.generate();
        for r in graph.extract_resource_types() {
            assert!(cache.contains(&r), "grid missing {r:?}");
        }
        // An out-of-range query falls through without poisoning the table.
        let wide = ResourceType::multiplier(40, 30);
        assert_eq!(cache.area(&wide), cost.area(&wide));
        assert!(!cache.contains(&wide));
    }

    #[test]
    fn grid_allocation_is_identical_to_direct() {
        let cost = SonicCostModel::default();
        let cache = width_grid_cache(&cost, 32);
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(11), 44);
        let job = BatchJob::new("g", generator.generate(), LatencySpec::RelaxPercent(20));
        let mut scratch = AllocScratch::new();
        let direct = solve_job(0, &job, &cost, 1, &mut scratch);
        let through_grid = solve_job(0, &job, &cache, 1, &mut scratch);
        assert_eq!(direct, through_grid);
        assert_eq!(cache.misses(), 0, "grid must cover the allocator's probes");
    }
}
