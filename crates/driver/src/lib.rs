//! Parallel batch-allocation driver for the `DPAlloc` heuristic.
//!
//! The allocator in [`mwl_core`] solves one graph at a time; real consumers
//! of fixed-point datapath synthesis (benchmark suites, design-space sweeps,
//! services) solve *many* — one per candidate design point.  This crate fans
//! a set of [`BatchJob`]s (graph, λ budget, [`mwl_core::AllocConfig`])
//! across a [`std::thread::scope`] worker pool and collects one
//! [`JobOutcome`] per job into a [`BatchReport`].
//!
//! Three properties define the engine:
//!
//! * **Determinism** — outcomes are stored by submission index, never by
//!   completion order, so a [`BatchReport`] is bit-identical for every
//!   worker count (including 1).  Parallelism changes wall-clock time only.
//! * **Shared read-only cost cache** — resource costs for every job graph
//!   are pre-computed once into a lock-free [`mwl_core::CachedCostModel`]
//!   shared by all workers.
//! * **Failure isolation** — a job whose budget is infeasible records its
//!   [`mwl_core::AllocError`] in the report; the rest of the batch runs on.
//!
//! No external dependencies are used: the pool is scoped threads, the queue
//! an atomic cursor, the report a plain vector.
//!
//! *Pipeline position:* sits on top of `mwl_core`; the `batch_sweep`
//! harness in `mwl_bench` drives it over the scenario families.  See
//! `docs/ARCHITECTURE.md` for the full map and a data-flow diagram of one
//! batch run.
//!
//! # Quick start
//!
//! ```
//! use mwl_core::AllocConfig;
//! use mwl_driver::{run_batch, BatchJob, BatchOptions, LatencySpec};
//! use mwl_model::{OpShape, SequencingGraphBuilder, SonicCostModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two jobs over the same tiny graph: a tight budget and a loose one.
//! let mut b = SequencingGraphBuilder::new();
//! let x = b.add_operation(OpShape::multiplier(8, 8));
//! let y = b.add_operation(OpShape::multiplier(14, 10));
//! let s = b.add_operation(OpShape::adder(24));
//! b.add_dependency(x, s)?;
//! b.add_dependency(y, s)?;
//! let graph = b.build()?;
//!
//! let jobs = vec![
//!     BatchJob::new("tight", graph.clone(), LatencySpec::RelaxSteps(0)),
//!     BatchJob::new("loose", graph, LatencySpec::RelaxPercent(30))
//!         .with_config(AllocConfig::new(0).with_instance_merging(true)),
//! ];
//!
//! let cost = SonicCostModel::default();
//! let report = run_batch(&jobs, &cost, &BatchOptions::default());
//! assert_eq!(report.summary().jobs, 2);
//! assert_eq!(report.summary().failed, 0);
//!
//! // The report is identical at any worker count.
//! let sequential = run_batch(&jobs, &cost, &BatchOptions::sequential());
//! assert_eq!(report, sequential);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod exec;
mod job;
mod report;

pub use engine::{run_batch, run_batch_traced};
pub use exec::{batch_cache, solve_job, width_grid_cache};
pub use job::{BatchJob, BatchOptions, LatencySpec};
pub use report::{BatchReport, BatchSummary, JobOutcome, JobStats, RtlCheck};
