//! Batch results: per-job outcomes and the aggregate report.

use std::fmt;

use mwl_core::{AllocError, BindingCertificate, PortfolioStats};
use mwl_model::{Area, AreaBreakdown, Cycles};
use mwl_obs::StageNanos;

/// The outcome of the opt-in RTL equivalence oracle for one job
/// (see [`crate::BatchJob::verify_rtl`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlCheck {
    /// `true` when every stimulus vector was bit-identical between the
    /// netlist simulation and the reference evaluation, and the netlist
    /// area accounting matched the datapath's (FU component and full
    /// breakdown alike).
    pub passed: bool,
    /// Number of stimulus vectors simulated.
    pub vectors: usize,
    /// Result registers in the lowered netlist (after lifetime sharing).
    pub registers: usize,
    /// Operand-mux steering arms in the lowered netlist.
    pub mux_arms: usize,
    /// Width-adapter cells in the lowered netlist.
    pub adapters: usize,
    /// Optimality certificate of the netlist's register binding; `None`
    /// when the check failed before a netlist was produced.
    pub certificate: Option<BindingCertificate>,
    /// Human-readable description of the first failure, when `!passed`.
    pub failure: Option<String>,
}

/// Statistics of one successfully allocated job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStats {
    /// Resolved latency budget `λ` the job ran with.
    pub lambda: Cycles,
    /// Datapath area (the functional-unit component; the allocator's
    /// objective).
    pub area: Area,
    /// Per-component area under the cost model's storage coefficients.
    /// With zero coefficients (the default) this collapses to
    /// `AreaBreakdown::fu_only(area)`.
    pub area_breakdown: AreaBreakdown,
    /// Optimality certificate of the datapath's register binding.
    pub certificate: BindingCertificate,
    /// Achieved overall latency (`<= lambda`).
    pub latency: Cycles,
    /// Number of resource instances in the datapath.
    pub instances: usize,
    /// Wordlength-refinement iterations performed.
    pub refinements: usize,
    /// Resource-bound escalations performed.
    pub bound_escalations: usize,
    /// Instance merges accepted by the post-bind merging pass.
    pub merges: usize,
    /// RTL equivalence-check outcome; `None` unless the job opted in via
    /// [`crate::BatchJob::verify_rtl`].
    pub rtl: Option<RtlCheck>,
    /// Portfolio-race statistics; `None` unless the job opted in via
    /// [`crate::BatchJob::portfolio`].  When present, [`area`](Self::area)
    /// is the *winning* variant's area and
    /// [`PortfolioStats::area_saved`] records how much the race improved
    /// on the plain configuration (variant 0).
    pub portfolio: Option<PortfolioStats>,
    /// Per-stage wall-clock breakdown of the job; `None` unless the batch
    /// ran with [`crate::BatchOptions::obs`] enabled.  Purely diagnostic:
    /// two reports that differ only here describe identical datapaths, and
    /// the obs-off report is byte-identical to pre-telemetry output.
    pub stages: Option<StageNanos>,
}

/// The result of one job: its label plus either stats or the allocation
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Position of the job in the submitted batch.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Allocation stats, or the error that failed the job.
    pub result: Result<JobStats, AllocError>,
}

/// Aggregate counters over a whole batch.
///
/// Derived deterministically from the per-job outcomes, so two
/// [`BatchReport`]s are equal exactly when all their outcomes are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Jobs that produced a datapath.
    pub succeeded: usize,
    /// Jobs that failed with an [`AllocError`].
    pub failed: usize,
    /// Sum of datapath (FU) areas over the successful jobs.
    pub total_area: Area,
    /// Component-wise sum of per-job area breakdowns over the successful
    /// jobs (`area_breakdown.fu == total_area` always holds).
    pub area_breakdown: AreaBreakdown,
    /// Sum of achieved latencies over the successful jobs.
    pub total_latency: u64,
    /// Sum of resource instances over the successful jobs.
    pub total_instances: usize,
    /// Sum of refinement iterations over the successful jobs.
    pub total_refinements: usize,
    /// Sum of bound escalations over the successful jobs.
    pub total_escalations: usize,
    /// Sum of accepted instance merges over the successful jobs.
    pub total_merges: usize,
    /// Jobs that ran the RTL equivalence oracle.
    pub rtl_checked: usize,
    /// RTL-checked jobs whose netlist was bit-identical to the reference.
    pub rtl_passed: usize,
    /// Successful jobs that raced a variant portfolio.
    pub portfolio_jobs: usize,
    /// Portfolio jobs whose winner was *not* the baseline variant.
    pub portfolio_improved: usize,
    /// Total area saved by portfolio winners relative to their baselines.
    pub portfolio_area_saved: Area,
    /// Element-wise sum of per-job stage breakdowns over jobs that carried
    /// one (all-zero when the batch ran without telemetry).
    pub stages: StageNanos,
}

/// The deterministic result of a batch run.
///
/// Outcomes are ordered by submission index, never by completion order, so a
/// report is bit-identical across worker counts (regression-tested in
/// `tests/determinism.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
}

impl BatchReport {
    /// Aggregates the per-job outcomes.
    #[must_use]
    pub fn summary(&self) -> BatchSummary {
        let mut s = BatchSummary {
            jobs: self.outcomes.len(),
            ..BatchSummary::default()
        };
        for outcome in &self.outcomes {
            match &outcome.result {
                Ok(stats) => {
                    s.succeeded += 1;
                    s.total_area += stats.area;
                    s.area_breakdown.fu += stats.area_breakdown.fu;
                    s.area_breakdown.register += stats.area_breakdown.register;
                    s.area_breakdown.mux += stats.area_breakdown.mux;
                    s.total_latency += u64::from(stats.latency);
                    s.total_instances += stats.instances;
                    s.total_refinements += stats.refinements;
                    s.total_escalations += stats.bound_escalations;
                    s.total_merges += stats.merges;
                    if let Some(rtl) = &stats.rtl {
                        s.rtl_checked += 1;
                        s.rtl_passed += usize::from(rtl.passed);
                    }
                    if let Some(p) = &stats.portfolio {
                        s.portfolio_jobs += 1;
                        s.portfolio_improved += usize::from(p.winner != 0);
                        s.portfolio_area_saved += p.area_saved;
                    }
                    if let Some(stages) = &stats.stages {
                        s.stages.merge(stages);
                    }
                }
                Err(_) => s.failed += 1,
            }
        }
        s
    }

    /// The outcomes of failed jobs.
    #[must_use]
    pub fn failures(&self) -> Vec<&JobOutcome> {
        self.outcomes.iter().filter(|o| o.result.is_err()).collect()
    }

    /// Renders the report as a compact JSON document (no external
    /// serialisation dependency; see the crate docs of the vendored `serde`
    /// stand-in for why).
    #[must_use]
    pub fn to_json(&self) -> String {
        let s = self.summary();
        let mut out = String::from("{\n  \"summary\": {");
        out.push_str(&format!(
            "\"jobs\": {}, \"succeeded\": {}, \"failed\": {}, \"total_area\": {}, \
             \"area_breakdown\": {{\"fu\": {}, \"register\": {}, \"mux\": {}}}, \
             \"total_latency\": {}, \"total_instances\": {}, \"total_refinements\": {}, \
             \"total_escalations\": {}, \"total_merges\": {}, \"rtl_checked\": {}, \
             \"rtl_passed\": {}, \"portfolio_jobs\": {}, \"portfolio_improved\": {}, \
             \"portfolio_area_saved\": {}",
            s.jobs,
            s.succeeded,
            s.failed,
            s.total_area,
            s.area_breakdown.fu,
            s.area_breakdown.register,
            s.area_breakdown.mux,
            s.total_latency,
            s.total_instances,
            s.total_refinements,
            s.total_escalations,
            s.total_merges,
            s.rtl_checked,
            s.rtl_passed,
            s.portfolio_jobs,
            s.portfolio_improved,
            s.portfolio_area_saved
        ));
        if !s.stages.is_zero() {
            out.push_str(&format!(", \"stages\": {}", stages_json(&s.stages)));
        }
        out.push_str("},\n  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!(
                "\"index\": {}, \"label\": {}",
                o.index,
                json_string(&o.label)
            ));
            match &o.result {
                Ok(st) => {
                    out.push_str(&format!(
                        ", \"ok\": true, \"lambda\": {}, \"area\": {}, \
                         \"area_breakdown\": {{\"fu\": {}, \"register\": {}, \"mux\": {}}}, \
                         \"certificate\": \"{}\", \
                         \"latency\": {}, \"instances\": {}, \"refinements\": {}, \
                         \"escalations\": {}, \"merges\": {}",
                        st.lambda,
                        st.area,
                        st.area_breakdown.fu,
                        st.area_breakdown.register,
                        st.area_breakdown.mux,
                        st.certificate.as_str(),
                        st.latency,
                        st.instances,
                        st.refinements,
                        st.bound_escalations,
                        st.merges
                    ));
                    if let Some(rtl) = &st.rtl {
                        out.push_str(&format!(
                            ", \"rtl\": {{\"passed\": {}, \"vectors\": {}, \
                             \"registers\": {}, \"mux_arms\": {}, \"adapters\": {}",
                            rtl.passed, rtl.vectors, rtl.registers, rtl.mux_arms, rtl.adapters
                        ));
                        if let Some(cert) = rtl.certificate {
                            out.push_str(&format!(", \"certificate\": \"{}\"", cert.as_str()));
                        }
                        if let Some(failure) = &rtl.failure {
                            out.push_str(&format!(", \"failure\": {}", json_string(failure)));
                        }
                        out.push('}');
                    }
                    if let Some(p) = &st.portfolio {
                        out.push_str(&format!(
                            ", \"portfolio\": {{\"seed\": {}, \"variants\": {}, \
                             \"solved\": {}, \"failed\": {}, \"winner\": {}, \
                             \"winner_label\": {}, \"area_saved\": {}",
                            p.seed,
                            p.variants,
                            p.solved,
                            p.failed,
                            p.winner,
                            json_string(&p.winner_label),
                            p.area_saved
                        ));
                        if let Some(v0) = p.variant0_area {
                            out.push_str(&format!(", \"variant0_area\": {v0}"));
                        }
                        out.push('}');
                    }
                    if let Some(stages) = &st.stages {
                        out.push_str(&format!(", \"stages\": {}", stages_json(stages)));
                    }
                }
                Err(e) => out.push_str(&format!(
                    ", \"ok\": false, \"error\": {}",
                    json_string(&e.to_string())
                )),
            }
            out.push('}');
            if i + 1 < self.outcomes.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.summary();
        writeln!(
            f,
            "batch: {} jobs, {} ok, {} failed, total area {}, {} merges",
            s.jobs, s.succeeded, s.failed, s.total_area, s.total_merges
        )?;
        for o in &self.outcomes {
            match &o.result {
                Ok(st) => {
                    let rtl = match &st.rtl {
                        Some(r) if r.passed => "  rtl ok".to_string(),
                        Some(r) => format!(
                            "  rtl FAIL ({})",
                            r.failure.as_deref().unwrap_or("unknown divergence")
                        ),
                        None => String::new(),
                    };
                    let portfolio = match &st.portfolio {
                        Some(p) if p.winner != 0 => {
                            format!("  portfolio -{} ({})", p.area_saved, p.winner_label)
                        }
                        Some(_) => "  portfolio =baseline".to_string(),
                        None => String::new(),
                    };
                    writeln!(
                        f,
                        "  [{:>3}] {:<28} area {:>8}  latency {:>4}/{:<4} instances \
                         {:>3}{rtl}{portfolio}",
                        o.index, o.label, st.area, st.latency, st.lambda, st.instances
                    )?;
                }
                Err(e) => writeln!(f, "  [{:>3}] {:<28} FAILED: {e}", o.index, o.label)?,
            }
        }
        Ok(())
    }
}

/// Renders a stage breakdown as a JSON object with `<stage>_ns` keys in
/// report order.
fn stages_json(stages: &StageNanos) -> String {
    let mut out = String::from("{");
    for (i, (stage, nanos)) in stages.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}_ns\": {nanos}", stage.name()));
    }
    out.push('}');
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BatchReport {
        BatchReport {
            outcomes: vec![
                JobOutcome {
                    index: 0,
                    label: "a".into(),
                    result: Ok(JobStats {
                        lambda: 10,
                        area: 100,
                        area_breakdown: AreaBreakdown {
                            fu: 100,
                            register: 24,
                            mux: 12,
                        },
                        certificate: BindingCertificate::Optimal,
                        latency: 9,
                        instances: 3,
                        refinements: 2,
                        bound_escalations: 1,
                        merges: 1,
                        rtl: Some(RtlCheck {
                            passed: true,
                            vectors: 4,
                            registers: 3,
                            mux_arms: 6,
                            adapters: 2,
                            certificate: Some(BindingCertificate::Optimal),
                            failure: None,
                        }),
                        portfolio: Some(PortfolioStats {
                            seed: 42,
                            variants: 6,
                            solved: 5,
                            failed: 1,
                            winner: 3,
                            winner_label: "no_growth+merge_shuffle".into(),
                            variant0_area: Some(112),
                            area_saved: 12,
                        }),
                        stages: None,
                    }),
                },
                JobOutcome {
                    index: 1,
                    label: "b\"quoted\"".into(),
                    result: Err(AllocError::LatencyUnachievable {
                        constraint: 1,
                        minimum: 5,
                    }),
                },
            ],
        }
    }

    #[test]
    fn summary_aggregates() {
        let r = sample_report();
        let s = r.summary();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.succeeded, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.total_area, 100);
        assert_eq!(
            s.area_breakdown,
            AreaBreakdown {
                fu: 100,
                register: 24,
                mux: 12
            }
        );
        assert_eq!(s.area_breakdown.fu, s.total_area);
        assert_eq!(s.total_merges, 1);
        assert_eq!(s.rtl_checked, 1);
        assert_eq!(s.rtl_passed, 1);
        assert_eq!(s.portfolio_jobs, 1);
        assert_eq!(s.portfolio_improved, 1);
        assert_eq!(s.portfolio_area_saved, 12);
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"jobs\": 2"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"ok\": false"));
        assert!(json.contains("\"rtl_checked\": 1"));
        assert!(json.contains("\"rtl\": {\"passed\": true"));
        assert!(json.contains("\"area_breakdown\": {\"fu\": 100, \"register\": 24, \"mux\": 12}"));
        assert!(json.contains("\"certificate\": \"optimal\""));
        assert!(json.contains("\"portfolio_jobs\": 1"));
        assert!(json.contains(
            "\"portfolio\": {\"seed\": 42, \"variants\": 6, \"solved\": 5, \"failed\": 1, \
             \"winner\": 3, \"winner_label\": \"no_growth+merge_shuffle\", \"area_saved\": 12, \
             \"variant0_area\": 112}"
        ));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn display_lists_every_job() {
        let text = sample_report().to_string();
        assert!(text.contains("2 jobs"));
        assert!(text.contains("FAILED"));
        assert!(text.contains("rtl ok"));
        assert!(text.contains("portfolio -12 (no_growth+merge_shuffle)"));
    }

    #[test]
    fn baseline_winning_portfolio_is_not_counted_as_improved() {
        let mut r = sample_report();
        if let Ok(st) = &mut r.outcomes[0].result {
            st.portfolio = Some(PortfolioStats {
                seed: 1,
                variants: 4,
                solved: 4,
                failed: 0,
                winner: 0,
                winner_label: "baseline".into(),
                variant0_area: Some(100),
                area_saved: 0,
            });
        }
        let s = r.summary();
        assert_eq!(s.portfolio_jobs, 1);
        assert_eq!(s.portfolio_improved, 0);
        assert_eq!(s.portfolio_area_saved, 0);
        assert!(r.to_string().contains("portfolio =baseline"));
        assert!(r.to_json().contains("\"winner_label\": \"baseline\""));
    }

    #[test]
    fn failed_rtl_check_is_visible() {
        let mut r = sample_report();
        if let Ok(st) = &mut r.outcomes[0].result {
            st.rtl = Some(RtlCheck {
                passed: false,
                vectors: 4,
                registers: 3,
                mux_arms: 6,
                adapters: 2,
                certificate: None,
                failure: Some("vector 1 diverged".into()),
            });
        }
        let s = r.summary();
        assert_eq!(s.rtl_checked, 1);
        assert_eq!(s.rtl_passed, 0);
        // The diagnostic reaches both the human-readable and JSON reports.
        assert!(r.to_string().contains("rtl FAIL (vector 1 diverged)"));
        assert!(r.to_json().contains("\"passed\": false"));
        assert!(r.to_json().contains("\"failure\": \"vector 1 diverged\""));
    }

    #[test]
    fn stage_breakdowns_reach_the_json_report_only_when_present() {
        let without = sample_report();
        assert!(!without.to_json().contains("\"stages\""));
        assert!(without.summary().stages.is_zero());

        let mut with = sample_report();
        if let Ok(st) = &mut with.outcomes[0].result {
            let mut stages = StageNanos::default();
            stages.add(mwl_obs::Stage::Schedule, 1_500);
            stages.add(mwl_obs::Stage::Solve, 4_000);
            st.stages = Some(stages);
        }
        let summary = with.summary();
        assert_eq!(summary.stages.get(mwl_obs::Stage::Schedule), 1_500);
        assert_eq!(summary.stages.get(mwl_obs::Stage::Solve), 4_000);
        let json = with.to_json();
        assert!(json.contains("\"stages\": {\"schedule_ns\": 1500, \"bind_ns\": 0"));
        assert!(json.contains("\"solve_ns\": 4000}"));
        // Stripping the breakdowns restores the obs-off report exactly.
        if let Ok(st) = &mut with.outcomes[0].result {
            st.stages = None;
        }
        assert_eq!(with.to_json(), without.to_json());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("x"), "\"x\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
