//! Quality regression for the portfolio race: wherever the ILP proves an
//! optimum, the portfolio winner is bounded below by it (optimality is a
//! floor, not a target); the winner never loses to variant 0 (the plain
//! allocator it always races); and across the sample the race closes a
//! recorded, non-negative share of the baseline-to-optimal area gap.

use std::time::Duration;

use mwl::prelude::*;

fn cost() -> SonicCostModel {
    SonicCostModel::default()
}

fn lambda_min(graph: &SequencingGraph, cost: &SonicCostModel) -> Cycles {
    let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
    critical_path_length(graph, &native)
}

/// Portfolio area is sandwiched between the proven ILP optimum and the
/// plain allocator's area on every graph where the ILP terminates, and the
/// closed-gap ratio over the sample is well-defined and within [0, 1].
#[test]
fn portfolio_never_beats_a_proven_optimum_and_never_loses_to_variant0() {
    let cost = cost();
    let spec = PortfolioSpec::new(2001, 10);
    let mut baseline_gap: u64 = 0;
    let mut portfolio_gap: u64 = 0;
    let mut proven = 0usize;

    for ops in [5usize, 7, 8, 9] {
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(ops), 1900 + ops as u64);
        for round in 0..3u32 {
            let graph = generator.generate();
            let lambda = lambda_min(&graph, &cost) + round % 2;

            let outcome = run_portfolio(&cost, &graph, &AllocConfig::new(lambda), spec, 1)
                .expect("relaxed budgets are achievable");
            outcome.best.datapath.validate(&graph, &cost).unwrap();
            assert!(outcome.best.datapath.latency() <= lambda);
            let won = outcome.best.datapath.area();
            let baseline = outcome
                .variant0_area
                .expect("the plain allocator solves achievable budgets");
            assert!(
                won <= baseline,
                "portfolio lost to its own baseline variant: {won} > {baseline} \
                 (ops {ops}, round {round})"
            );

            let ilp = IlpAllocator::new(&cost, lambda)
                .with_time_limit(Duration::from_secs(3))
                .allocate(&graph);
            let Ok(optimal) = ilp else {
                continue; // time limit: the graph drops out of the study
            };
            if !optimal.stats.proven_optimal {
                continue;
            }
            let floor = optimal.datapath.area();
            assert!(
                won >= floor,
                "portfolio under a proven optimum: {won} < {floor} (ops {ops}, round {round})"
            );
            proven += 1;
            baseline_gap += baseline - floor;
            portfolio_gap += won - floor;
        }
    }

    assert!(
        proven >= 6,
        "too few proven optima to regress quality against"
    );
    assert!(portfolio_gap <= baseline_gap);
    let closed = if baseline_gap == 0 {
        1.0
    } else {
        (baseline_gap - portfolio_gap) as f64 / baseline_gap as f64
    };
    assert!((0.0..=1.0).contains(&closed));
    println!(
        "portfolio quality: {proven} proven optima, baseline gap {baseline_gap}, \
         portfolio gap {portfolio_gap}, closed {:.1}%",
        100.0 * closed
    );
}

/// The race is not a no-op: over a seeded scenario sample, at least one
/// winner strictly improves on variant 0 — and the improvement is exactly
/// what the reported stats claim.
#[test]
fn portfolio_improves_somewhere_and_stats_reconcile() {
    let cost = cost();
    let spec = PortfolioSpec::new(2001, 10);
    let mut improved = 0usize;

    for seed in 0..10u64 {
        let graph = TgffGenerator::new(TgffConfig::with_ops(12), 4242 + seed).generate();
        let lambda = lambda_min(&graph, &cost) + 3;
        let outcome = run_portfolio(&cost, &graph, &AllocConfig::new(lambda), spec, 1)
            .expect("relaxed budgets are achievable");
        let stats = PortfolioStats::from_outcome(spec.seed, &outcome);
        let won = outcome.best.datapath.area();
        let baseline = outcome.variant0_area.expect("baseline solves");
        assert_eq!(stats.area_saved, baseline - won);
        assert_eq!(stats.variants, spec.effective_variants());
        assert_eq!(stats.solved + stats.failed, stats.variants);
        if stats.area_saved > 0 {
            assert_ne!(stats.winner, 0, "a saving implies a non-baseline winner");
            improved += 1;
        }
    }
    assert!(
        improved > 0,
        "no graph in the sample improved — the portfolio race is a no-op"
    );
}
