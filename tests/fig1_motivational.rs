//! End-to-end test of the paper's Figure 1 motivational example.
//!
//! Figure 1 shows a multiple-wordlength sequencing graph together with an
//! area-optimal scheduling, binding and wordlength selection in which small
//! multiplications are executed on larger (slower) multipliers so that
//! resources can be shared.  This test reproduces the scenario end to end:
//! adders take two cycles, an `n×m` multiplier takes `⌈(n+m)/8⌉` cycles, and
//! resources may execute any operation up to their wordlength.

use mwl::prelude::*;

/// Builds a Figure-1-like graph: four multiplications of decreasing
/// wordlength feeding a two-level adder tree.
fn fig1_graph() -> (SequencingGraph, Vec<OpId>) {
    let mut builder = SequencingGraphBuilder::new();
    let m1 = builder.add_named_operation(OpShape::multiplier(8, 8), "m1");
    let m2 = builder.add_named_operation(OpShape::multiplier(12, 10), "m2");
    let m3 = builder.add_named_operation(OpShape::multiplier(16, 14), "m3");
    let m4 = builder.add_named_operation(OpShape::multiplier(20, 18), "m4");
    let a1 = builder.add_named_operation(OpShape::adder(24), "a1");
    let a2 = builder.add_named_operation(OpShape::adder(25), "a2");
    builder.add_dependency(m1, a1).unwrap();
    builder.add_dependency(m2, a1).unwrap();
    builder.add_dependency(m3, a2).unwrap();
    builder.add_dependency(m4, a2).unwrap();
    let graph = builder.build().unwrap();
    (graph, vec![m1, m2, m3, m4, a1, a2])
}

#[test]
fn latency_model_matches_the_paper() {
    let cost = SonicCostModel::default();
    // "The latency of all adders is two cycles."
    assert_eq!(cost.latency(&ResourceType::adder(25)), 2);
    // "The latency of an n x m-bit multiplier is given by ceil((n+m)/8)."
    assert_eq!(cost.latency(&ResourceType::multiplier(20, 18)), 5);
    assert_eq!(cost.latency(&ResourceType::multiplier(8, 8)), 2);
}

#[test]
fn tight_constraint_is_met_and_valid() {
    let (graph, _) = fig1_graph();
    let cost = SonicCostModel::default();
    let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
    let lambda_min = critical_path_length(&graph, &native);
    // Critical path: the 20x18 multiplication (5 cycles) + adder (2) = 7.
    assert_eq!(lambda_min, 7);

    let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda_min))
        .allocate(&graph)
        .unwrap();
    datapath.validate(&graph, &cost).unwrap();
    assert!(datapath.latency() <= lambda_min);
}

#[test]
fn relaxed_constraint_shares_multipliers_in_larger_resources() {
    let (graph, ops) = fig1_graph();
    let cost = SonicCostModel::default();
    let tight = DpAllocator::new(&cost, AllocConfig::new(7))
        .allocate(&graph)
        .unwrap();
    let relaxed = DpAllocator::new(&cost, AllocConfig::new(14))
        .allocate(&graph)
        .unwrap();
    relaxed.validate(&graph, &cost).unwrap();

    // Slack never makes the heuristic worse, and here it allows multiplier
    // sharing, so the area strictly drops.
    assert!(relaxed.area() < tight.area());

    // "Resources can execute operations up to the wordlength of the resource,
    // even if implementation in a larger resource leads to a longer latency":
    // with slack, at least one small multiplication runs on a resource larger
    // than its own shape.
    let m1 = ops[0];
    let selected = relaxed.selected_resource(m1);
    let multiplier_instances = relaxed
        .instances()
        .iter()
        .filter(|i| i.resource().class() == ResourceClass::Multiplier)
        .count();
    assert!(multiplier_instances < 4, "some multiplier must be shared");
    assert!(selected.covers(graph.operation(m1).shape()));
}

#[test]
fn heuristic_matches_optimum_on_the_motivational_example() {
    let (graph, _) = fig1_graph();
    let cost = SonicCostModel::default();
    for lambda in [7u32, 10, 14] {
        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let optimal = ExhaustiveAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap();
        assert!(heuristic.area() >= optimal.area());
        // The paper reports a 0-16% *mean* premium over 200 random graphs;
        // individual instances can sit somewhat above that, so this check
        // only guards against gross regressions of the heuristic.
        let premium =
            (heuristic.area() as f64 - optimal.area() as f64) / optimal.area() as f64 * 100.0;
        assert!(
            premium <= 35.0,
            "premium {premium:.1}% too high at lambda {lambda}"
        );
    }
}

#[test]
fn two_stage_baseline_pays_an_area_penalty_with_slack() {
    let (graph, _) = fig1_graph();
    let cost = SonicCostModel::default();
    let lambda = 14;
    let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
        .allocate(&graph)
        .unwrap();
    let two_stage = TwoStageAllocator::new(&cost, lambda)
        .allocate(&graph)
        .unwrap();
    two_stage.validate(&graph, &cost).unwrap();
    assert!(
        two_stage.area() > heuristic.area(),
        "the intertwined heuristic must beat the two-stage approach when slack exists \
         (heuristic {}, two-stage {})",
        heuristic.area(),
        two_stage.area()
    );
}
