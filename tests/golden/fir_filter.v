// Structural multiple-wordlength datapath, emitted by mwl_rtl.
// 14 control steps, 6 functional units, 6 registers (111 bits),
// 30 mux arms, 3 width adapters.
// Protocol: hold rst high for one cycle, then present the primary
// inputs and keep them stable for 14 cycles; the outputs are valid
// once the step counter reaches 14.
module fir8 (
  input  wire clk,
  input  wire rst,
  input  wire signed [9:0] in0_o0_p0,
  input  wire signed [3:0] in1_o0_p1,
  input  wire signed [9:0] in2_o1_p0,
  input  wire signed [5:0] in3_o1_p1,
  input  wire signed [11:0] in4_o2_p0,
  input  wire signed [8:0] in5_o2_p1,
  input  wire signed [13:0] in6_o3_p0,
  input  wire signed [13:0] in7_o3_p1,
  input  wire signed [13:0] in8_o4_p0,
  input  wire signed [13:0] in9_o4_p1,
  input  wire signed [11:0] in10_o5_p0,
  input  wire signed [8:0] in11_o5_p1,
  input  wire signed [9:0] in12_o6_p0,
  input  wire signed [5:0] in13_o6_p1,
  input  wire signed [9:0] in14_o7_p0,
  input  wire signed [3:0] in15_o7_p1,
  output wire signed [15:0] out0_o14
);

  // Controller FSM: step counter 0..14.
  reg [3:0] step;
  always @(posedge clk) begin
    if (rst) step <= 4'd0;
    else if (step < 4'd14) step <= step + 4'd1;
  end

  // Result registers (lifetime-shared).
  reg signed [13:0] r0_w14;
  reg signed [15:0] r1_w16;
  reg signed [15:0] r2_w16;
  reg signed [15:0] r3_w16;
  reg signed [20:0] r4_w21;
  reg signed [27:0] r5_w28;

  // Operand muxes and functional-unit outputs.
  reg signed [15:0] fu0_opa;
  reg signed [15:0] fu0_opb;
  reg signed [15:0] fu1_opa;
  reg signed [15:0] fu1_opb;
  reg signed [9:0] fu2_opa;
  reg signed [3:0] fu2_opb;
  reg signed [13:0] fu3_opa;
  reg signed [13:0] fu3_opb;
  reg signed [11:0] fu4_opa;
  reg signed [8:0] fu4_opb;
  reg signed [9:0] fu5_opa;
  reg signed [5:0] fu5_opb;
  wire signed [15:0] fu0_add16_y;
  reg fu0_add16_sub;
  wire signed [15:0] fu1_add16_y;
  reg fu1_add16_sub;
  wire signed [13:0] fu2_mul10x4_y;
  wire signed [27:0] fu3_mul14x14_y;
  wire signed [20:0] fu4_mul12x9_y;
  wire signed [15:0] fu5_mul10x6_y;

  // Width adapters: sign-extension on widening, truncation on narrowing.
  wire signed [15:0] ad0_14to16 = {{2{r0_w14[13]}}, r0_w14};
  wire signed [15:0] ad1_21to16 = r4_w21[15:0];
  wire signed [15:0] ad2_28to16 = r5_w28[15:0];

  // Operand port a of fu0_add16.
  always @* begin
    case (step)
      4'd2, 4'd3: fu0_opa = ad0_14to16; // o8
      4'd4, 4'd5: fu0_opa = r1_w16; // o11
      4'd8, 4'd9: fu0_opa = ad2_28to16; // o10
      4'd10, 4'd11: fu0_opa = r2_w16; // o13
      4'd12, 4'd13: fu0_opa = r1_w16; // o14
      default: fu0_opa = {16{1'b0}};
    endcase
  end

  // Operand port b of fu0_add16.
  always @* begin
    case (step)
      4'd2, 4'd3: fu0_opb = r1_w16; // o8
      4'd4, 4'd5: fu0_opb = ad0_14to16; // o11
      4'd8, 4'd9: fu0_opb = ad1_21to16; // o10
      4'd10, 4'd11: fu0_opb = r3_w16; // o13
      4'd12, 4'd13: fu0_opb = r2_w16; // o14
      default: fu0_opb = {16{1'b0}};
    endcase
  end

  // Operand port a of fu1_add16.
  always @* begin
    case (step)
      4'd4, 4'd5: fu1_opa = ad1_21to16; // o9
      4'd6, 4'd7: fu1_opa = r2_w16; // o12
      default: fu1_opa = {16{1'b0}};
    endcase
  end

  // Operand port b of fu1_add16.
  always @* begin
    case (step)
      4'd4, 4'd5: fu1_opb = ad2_28to16; // o9
      4'd6, 4'd7: fu1_opb = r1_w16; // o12
      default: fu1_opb = {16{1'b0}};
    endcase
  end

  // Operand port a of fu2_mul10x4.
  always @* begin
    case (step)
      4'd0, 4'd1: fu2_opa = in0_o0_p0; // o0
      4'd2, 4'd3: fu2_opa = in14_o7_p0; // o7
      default: fu2_opa = {10{1'b0}};
    endcase
  end

  // Operand port b of fu2_mul10x4.
  always @* begin
    case (step)
      4'd0, 4'd1: fu2_opb = in1_o0_p1; // o0
      4'd2, 4'd3: fu2_opb = in15_o7_p1; // o7
      default: fu2_opb = {4{1'b0}};
    endcase
  end

  // Operand port a of fu3_mul14x14.
  always @* begin
    case (step)
      4'd0, 4'd1, 4'd2, 4'd3: fu3_opa = in6_o3_p0; // o3
      4'd4, 4'd5, 4'd6, 4'd7: fu3_opa = in8_o4_p0; // o4
      default: fu3_opa = {14{1'b0}};
    endcase
  end

  // Operand port b of fu3_mul14x14.
  always @* begin
    case (step)
      4'd0, 4'd1, 4'd2, 4'd3: fu3_opb = in7_o3_p1; // o3
      4'd4, 4'd5, 4'd6, 4'd7: fu3_opb = in9_o4_p1; // o4
      default: fu3_opb = {14{1'b0}};
    endcase
  end

  // Operand port a of fu4_mul12x9.
  always @* begin
    case (step)
      4'd0, 4'd1, 4'd2: fu4_opa = in4_o2_p0; // o2
      4'd3, 4'd4, 4'd5: fu4_opa = in10_o5_p0; // o5
      default: fu4_opa = {12{1'b0}};
    endcase
  end

  // Operand port b of fu4_mul12x9.
  always @* begin
    case (step)
      4'd0, 4'd1, 4'd2: fu4_opb = in5_o2_p1; // o2
      4'd3, 4'd4, 4'd5: fu4_opb = in11_o5_p1; // o5
      default: fu4_opb = {9{1'b0}};
    endcase
  end

  // Operand port a of fu5_mul10x6.
  always @* begin
    case (step)
      4'd0, 4'd1: fu5_opa = in2_o1_p0; // o1
      4'd2, 4'd3: fu5_opa = in12_o6_p0; // o6
      default: fu5_opa = {10{1'b0}};
    endcase
  end

  // Operand port b of fu5_mul10x6.
  always @* begin
    case (step)
      4'd0, 4'd1: fu5_opb = in3_o1_p1; // o1
      4'd2, 4'd3: fu5_opb = in13_o6_p1; // o6
      default: fu5_opb = {6{1'b0}};
    endcase
  end

  // fu0_add16: 16-bit adder.
  always @* begin
    case (step)
      default: fu0_add16_sub = 1'b0;
    endcase
  end
  assign fu0_add16_y = fu0_add16_sub ? (fu0_opa - fu0_opb) : (fu0_opa + fu0_opb);

  // fu1_add16: 16-bit adder.
  always @* begin
    case (step)
      default: fu1_add16_sub = 1'b0;
    endcase
  end
  assign fu1_add16_y = fu1_add16_sub ? (fu1_opa - fu1_opb) : (fu1_opa + fu1_opb);

  // fu2_mul10x4: 10x4-bit multiplier.
  assign fu2_mul10x4_y = fu2_opa * fu2_opb;

  // fu3_mul14x14: 14x14-bit multiplier.
  assign fu3_mul14x14_y = fu3_opa * fu3_opb;

  // fu4_mul12x9: 12x9-bit multiplier.
  assign fu4_mul12x9_y = fu4_opa * fu4_opb;

  // fu5_mul10x6: 10x6-bit multiplier.
  assign fu5_mul10x6_y = fu5_opa * fu5_opb;

  // Synchronous result registers.
  always @(posedge clk) begin
    if (rst) r0_w14 <= {14{1'b0}};
    else case (step)
      4'd1: r0_w14 <= fu2_mul10x4_y; // o0
      4'd3: r0_w14 <= fu2_mul10x4_y; // o7
      default: r0_w14 <= r0_w14;
    endcase
  end
  always @(posedge clk) begin
    if (rst) r1_w16 <= {16{1'b0}};
    else case (step)
      4'd1: r1_w16 <= fu5_mul10x6_y; // o1
      4'd3: r1_w16 <= fu5_mul10x6_y; // o6
      4'd5: r1_w16 <= fu1_add16_y; // o9
      4'd7: r1_w16 <= fu1_add16_y; // o12
      4'd13: r1_w16 <= fu0_add16_y; // o14
      default: r1_w16 <= r1_w16;
    endcase
  end
  always @(posedge clk) begin
    if (rst) r2_w16 <= {16{1'b0}};
    else case (step)
      4'd3: r2_w16 <= fu0_add16_y; // o8
      4'd9: r2_w16 <= fu0_add16_y; // o10
      4'd11: r2_w16 <= fu0_add16_y; // o13
      default: r2_w16 <= r2_w16;
    endcase
  end
  always @(posedge clk) begin
    if (rst) r3_w16 <= {16{1'b0}};
    else case (step)
      4'd5: r3_w16 <= fu0_add16_y; // o11
      default: r3_w16 <= r3_w16;
    endcase
  end
  always @(posedge clk) begin
    if (rst) r4_w21 <= {21{1'b0}};
    else case (step)
      4'd2: r4_w21 <= fu4_mul12x9_y; // o2
      4'd5: r4_w21 <= fu4_mul12x9_y; // o5
      default: r4_w21 <= r4_w21;
    endcase
  end
  always @(posedge clk) begin
    if (rst) r5_w28 <= {28{1'b0}};
    else case (step)
      4'd3: r5_w28 <= fu3_mul14x14_y; // o3
      4'd7: r5_w28 <= fu3_mul14x14_y; // o4
      default: r5_w28 <= r5_w28;
    endcase
  end

  // Primary outputs (sink operation values).
  assign out0_o14 = r1_w16; // o14

endmodule
