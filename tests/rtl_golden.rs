//! Golden-file regression: the Verilog emitted for the 8-tap FIR example is
//! byte-stable.
//!
//! The FIR workload is `mwl::workloads::fir_graph(&FIR8_TAPS, 16)` — the
//! same shared builder, taps, accumulator width and relaxed latency budget
//! as `examples/fir_filter.rs` — so the golden file pins the entire
//! allocate → lower → emit pipeline: an unintended change to the
//! allocator's deterministic choices, the lowering's cell naming or the
//! emitter's formatting shows up as a diff against
//! `tests/golden/fir_filter.v`.
//!
//! To regenerate after an *intended* change:
//! `cargo run --example fir_filter && cp results/fir_filter.v tests/golden/`

use mwl::prelude::*;
use mwl::workloads::{fir_graph, FIR8_TAPS};

#[test]
fn fir_verilog_matches_golden_file() {
    let graph = fir_graph(&FIR8_TAPS, 16).expect("valid workload");
    let cost = SonicCostModel::default();
    let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
    let lambda_min = critical_path_length(&graph, &native);
    let lambda = lambda_min + lambda_min / 2;
    let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
        .allocate(&graph)
        .expect("achievable budget");

    // The datapath itself must also be bit-true before we pin its text.
    let vectors = random_vectors(&graph, 2001, 16);
    check_equivalence(&graph, &datapath, &cost, &vectors).expect("bit-true");

    let netlist = lower_datapath(&graph, &datapath, &cost, "fir8").expect("lowerable");
    let emitted = emit_verilog(&netlist);
    let golden = include_str!("golden/fir_filter.v");
    assert_eq!(
        emitted, golden,
        "emitted Verilog diverged from tests/golden/fir_filter.v; if the \
         change is intended, regenerate with `cargo run --example fir_filter \
         && cp results/fir_filter.v tests/golden/`"
    );
}
