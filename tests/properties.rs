//! Property-based tests over random multiple-wordlength allocation problems.
//!
//! These use proptest to generate random sequencing graphs (via seeded TGFF
//! configurations) and random latency slacks, and assert the paper's core
//! invariants hold for every instance: schedules are valid, bindings satisfy
//! Eqn (4), the heuristic always meets an achievable constraint, and the
//! exact solvers lower-bound the heuristic.

use proptest::prelude::*;

use mwl::prelude::*;
use mwl_core::storage::{clique_lower_bound, left_edge_registers, result_widths};
use mwl_tgff::{GraphShape, WidthProfile};

fn cost() -> SonicCostModel {
    SonicCostModel::default()
}

fn lambda_min(graph: &SequencingGraph, cost: &SonicCostModel) -> Cycles {
    let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
    critical_path_length(graph, &native)
}

/// Strategy: a random graph described by (ops, seed, mul_fraction index).
fn graph_strategy() -> impl Strategy<Value = SequencingGraph> {
    (1usize..=14, any::<u64>(), 0u8..=2).prop_map(|(ops, seed, mix)| {
        let mul_fraction = match mix {
            0 => 0.25,
            1 => 0.5,
            _ => 0.75,
        };
        let config = TgffConfig::with_ops(ops).mul_fraction(mul_fraction);
        TgffGenerator::new(config, seed).generate()
    })
}

/// Strategy: a random graph drawn from *every* scenario family — the full
/// [`GraphShape`] × [`WidthProfile`] cross product the batch driver sweeps —
/// so the register-binder invariants below are checked on each family.
fn shaped_graph_strategy() -> impl Strategy<Value = SequencingGraph> {
    let shape = prop_oneof![
        Just(GraphShape::Layered),
        Just(GraphShape::Wide),
        Just(GraphShape::Deep),
        Just(GraphShape::Diamond),
    ];
    let profile = prop_oneof![
        Just(WidthProfile::Uniform),
        (0.1f64..=0.9).prop_map(|high_fraction| WidthProfile::Mixed { high_fraction }),
    ];
    (2usize..=14, any::<u64>(), shape, profile).prop_map(|(ops, seed, shape, profile)| {
        let config = TgffConfig::with_ops(ops)
            .shape(shape)
            .width_profile(profile);
        TgffGenerator::new(config, seed).generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The heuristic always returns a datapath that validates and meets any
    /// achievable latency constraint.
    #[test]
    fn heuristic_always_valid_and_meets_constraint(
        graph in graph_strategy(),
        slack in 0u32..8,
    ) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .expect("achievable constraint must be satisfiable");
        prop_assert!(datapath.latency() <= lambda);
        prop_assert!(datapath.validate(&graph, &cost).is_ok());
        // Every operation's selected resource covers it (Eqn 4) and its area
        // contributes to the total.
        for op in graph.op_ids() {
            prop_assert!(datapath.selected_resource(op).covers(graph.operation(op).shape()));
        }
        prop_assert!(datapath.area() > 0);
        prop_assert!(datapath.num_instances() <= graph.len());
    }

    /// Constraints below the critical path are always rejected.
    #[test]
    fn unachievable_constraints_rejected(graph in graph_strategy()) {
        let cost = cost();
        let minimum = lambda_min(&graph, &cost);
        prop_assume!(minimum > 1);
        let result = DpAllocator::new(&cost, AllocConfig::new(minimum - 1)).allocate(&graph);
        let rejected = matches!(result, Err(AllocError::LatencyUnachievable { .. }));
        prop_assert!(rejected);
    }

    /// ASAP start times lower-bound any valid resource-constrained schedule
    /// produced through the allocator.
    #[test]
    fn schedule_never_beats_asap(graph in graph_strategy(), slack in 0u32..6) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
        let earliest = asap(&graph, &native);
        for op in graph.op_ids() {
            prop_assert!(datapath.schedule().start(op) >= earliest.start(op));
        }
    }

    /// The two-stage baseline never produces a smaller area than the
    /// heuristic *and* the optimum never exceeds either (checked on small
    /// graphs where the exhaustive oracle is cheap).
    #[test]
    fn ordering_of_optimum_heuristic_and_baseline(
        (ops, seed) in (1usize..=5, any::<u64>()),
        slack in 0u32..5,
    ) {
        let cost = cost();
        let graph = TgffGenerator::new(TgffConfig::with_ops(ops), seed).generate();
        let lambda = lambda_min(&graph, &cost) + slack;
        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph).unwrap();
        let optimum = ExhaustiveAllocator::new(&cost, lambda).allocate(&graph).unwrap();
        let two_stage = TwoStageAllocator::new(&cost, lambda).allocate(&graph).unwrap();
        prop_assert!(optimum.area() <= heuristic.area());
        prop_assert!(optimum.area() <= two_stage.area());
    }

    /// Wordlength selection only ever widens an operation (a resource larger
    /// than needed), never narrows it, and bound latencies never drop below
    /// the native latency.
    #[test]
    fn wordlength_selection_only_widens(graph in graph_strategy(), slack in 0u32..6) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph).unwrap();
        let bound = datapath.bound_latencies(&cost);
        for op in graph.op_ids() {
            let shape = graph.operation(op).shape();
            let selected = datapath.selected_resource(op);
            let (sa, sb) = selected.widths();
            let (oa, ob) = shape.widths();
            prop_assert!(sa >= oa && sb >= ob || selected.class() == ResourceClass::Adder);
            prop_assert!(bound.get(op) >= cost.native_latency(shape));
            prop_assert!(cost.area(&selected) >= cost.area(&ResourceType::for_shape(shape)));
        }
    }

    /// The allocator is a pure function of its inputs.
    #[test]
    fn allocation_is_deterministic(graph in graph_strategy(), slack in 0u32..4) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let a = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph).unwrap();
        let b = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The post-bind instance-merging pass is monotone: it never increases
    /// area, never violates the latency constraint, and the merged datapath
    /// still satisfies every problem invariant.
    #[test]
    fn instance_merging_is_monotone_and_valid(
        graph in graph_strategy(),
        slack in 0u32..12,
    ) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let split = DpAllocator::new(
            &cost,
            AllocConfig::new(lambda).with_instance_merging(false),
        )
        .allocate(&graph)
        .unwrap();
        let (merged, stats) = merge_instances(&split, &graph, &cost, lambda);
        prop_assert!(merged.validate(&graph, &cost).is_ok());
        prop_assert!(merged.area() <= split.area());
        prop_assert!(merged.latency() <= lambda);
        prop_assert_eq!(stats.area_before, split.area());
        prop_assert_eq!(stats.area_after, merged.area());
        prop_assert_eq!(stats.area_saved(), split.area() - merged.area());
        // The allocator with merging enabled reports the same result.
        let outcome = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate_with_stats(&graph)
            .unwrap();
        prop_assert_eq!(outcome.datapath.area(), merged.area());
        prop_assert_eq!(outcome.merges, stats.merges);
    }

    /// On every scenario family the interval-packing binder is certified
    /// optimal: its register count equals the max-overlap clique lower bound
    /// and never exceeds what the left-edge fallback oracle uses.
    #[test]
    fn binder_is_certified_and_meets_the_clique_bound(
        graph in shaped_graph_strategy(),
        slack in 0u32..8,
    ) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let widths = result_widths(&graph);
        let lifetimes = datapath.value_lifetimes(&graph, &cost);
        let binding = pack_registers(&widths, &lifetimes);
        prop_assert_eq!(binding.certificate, BindingCertificate::Optimal);
        prop_assert_eq!(binding.registers(), binding.clique_bound);
        prop_assert_eq!(binding.clique_bound, clique_lower_bound(&widths, &lifetimes));
        let (left_edge_widths, _) = left_edge_registers(&widths, &lifetimes);
        prop_assert!(binding.registers() <= left_edge_widths.len());
        // Packing can only save registers, never storage bits per value:
        // the left-edge oracle shares within exact width classes too.
        let left_edge_bits: u64 = left_edge_widths.iter().map(|&w| u64::from(w)).sum();
        prop_assert!(binding.register_bits() <= left_edge_bits);
    }

    /// No two values with overlapping lifetimes ever share a register, and
    /// every value sits in a register of exactly its result width.
    #[test]
    fn binder_never_overlaps_values_in_a_register(
        graph in shaped_graph_strategy(),
        slack in 0u32..8,
    ) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let widths = result_widths(&graph);
        let lifetimes = datapath.value_lifetimes(&graph, &cost);
        let binding = pack_registers(&widths, &lifetimes);
        prop_assert_eq!(binding.reg_of.len(), graph.len());
        for (i, &reg) in binding.reg_of.iter().enumerate() {
            prop_assert_eq!(binding.widths[reg], widths[i]);
            for (j, &other) in binding.reg_of.iter().enumerate().skip(i + 1) {
                if reg == other {
                    let (a, b) = (lifetimes[i], lifetimes[j]);
                    let disjoint = a.dies < b.born || b.dies < a.born;
                    prop_assert!(
                        disjoint,
                        "values {i} [{},{}] and {j} [{},{}] share register {reg}",
                        a.born, a.dies, b.born, b.dies,
                    );
                }
            }
        }
    }

    /// After the rebind the RTL simulation stays bit-identical to the
    /// fixed-point reference on every scenario family, the certificate
    /// survives lowering, and under the default zero storage coefficients
    /// the breakdown collapses to the paper's FU-only area bit for bit.
    #[test]
    fn rtl_is_bit_identical_after_rebind_on_all_families(
        graph in shaped_graph_strategy(),
        slack in 0u32..6,
        seed in any::<u64>(),
    ) {
        let cost = cost();
        let lambda = lambda_min(&graph, &cost) + slack;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let vectors = random_vectors(&graph, seed, 4);
        let report = check_equivalence(&graph, &datapath, &cost, &vectors)
            .expect("RTL must match the fixed-point reference");
        prop_assert_eq!(report.vectors, 4);
        prop_assert_eq!(report.certificate, BindingCertificate::Optimal);
        prop_assert_eq!(report.netlist_area, datapath.area());
        prop_assert_eq!(report.area_breakdown, AreaBreakdown::fu_only(datapath.area()));
        prop_assert_eq!(report.area_breakdown.total(), datapath.area());
    }

    /// Pricing storage never changes the FU component or the certificate —
    /// only adds register/mux terms — and the mux term is zero exactly when
    /// nothing is shared.
    #[test]
    fn storage_costs_only_add_components(
        graph in shaped_graph_strategy(),
        slack in 0u32..6,
        (reg_cost, mux_cost) in (1u64..=4, 1u64..=4),
    ) {
        let zero = cost();
        let priced = SonicCostModel::default().with_storage_costs(StorageCosts {
            register_area_per_bit: reg_cost,
            mux_area_per_input_bit: mux_cost,
        });
        let lambda = lambda_min(&graph, &zero) + slack;
        let datapath = DpAllocator::new(&zero, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let plain = datapath.area_breakdown(&graph, &zero);
        let full = datapath.area_breakdown(&graph, &priced);
        prop_assert_eq!(plain, AreaBreakdown::fu_only(datapath.area()));
        prop_assert_eq!(full.fu, plain.fu);
        let binding = datapath.register_binding(&graph, &priced);
        prop_assert_eq!(binding.certificate, BindingCertificate::Optimal);
        prop_assert_eq!(full.register, binding.register_bits() * reg_cost);
        prop_assert_eq!(full.mux, datapath.mux_input_bits() * mux_cost);
        let shared = datapath
            .instances()
            .iter()
            .any(|inst| inst.sharing_factor() >= 2);
        prop_assert_eq!(full.mux > 0, shared);
        prop_assert_eq!(full.total(), full.fu + full.register + full.mux);
    }
}
