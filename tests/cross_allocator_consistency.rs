//! Cross-crate consistency checks between the heuristic, the optimal
//! allocators and the baselines on seeded random graphs.

use std::time::Duration;

use mwl::prelude::*;

fn cost() -> SonicCostModel {
    SonicCostModel::default()
}

fn lambda_min(graph: &SequencingGraph, cost: &SonicCostModel) -> Cycles {
    let native = OpLatencies::from_fn(graph, |op| cost.native_latency(op.shape()));
    critical_path_length(graph, &native)
}

#[test]
fn every_allocator_produces_valid_datapaths_within_the_constraint() {
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(9), 314);
    for round in 0..8 {
        let graph = generator.generate();
        let lambda = lambda_min(&graph, &cost) + round % 4;

        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        heuristic.validate(&graph, &cost).unwrap();
        assert!(heuristic.latency() <= lambda);

        let two_stage = TwoStageAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap();
        two_stage.validate(&graph, &cost).unwrap();
        assert!(two_stage.latency() <= lambda);

        let sorted = SortedCliqueAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap();
        sorted.validate(&graph, &cost).unwrap();
        assert!(sorted.latency() <= lambda);
    }
}

#[test]
fn optimum_lower_bounds_every_other_allocator() {
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(5), 2718);
    for _ in 0..6 {
        let graph = generator.generate();
        let lambda = lambda_min(&graph, &cost) + 2;
        let optimal = IlpAllocator::new(&cost, lambda)
            .with_time_limit(Duration::from_secs(60))
            .allocate(&graph)
            .unwrap();
        assert!(optimal.stats.proven_optimal);
        let optimum = optimal.datapath.area();

        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let two_stage = TwoStageAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap();
        let sorted = SortedCliqueAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap();

        assert!(optimum <= heuristic.area());
        assert!(optimum <= two_stage.area());
        assert!(optimum <= sorted.area());
    }
}

#[test]
fn heuristic_area_is_monotone_in_the_latency_constraint_on_average() {
    // Relaxing the constraint gives the heuristic strictly more freedom; the
    // total area over a batch of graphs must not increase.
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(10), 777);
    let graphs: Vec<SequencingGraph> = (0..10).map(|_| generator.generate()).collect();
    let total_area = |relax: u32| -> u64 {
        graphs
            .iter()
            .map(|g| {
                let lambda = lambda_min(g, &cost) + relax;
                DpAllocator::new(&cost, AllocConfig::new(lambda))
                    .allocate(g)
                    .unwrap()
                    .area()
            })
            .sum()
    };
    let tight = total_area(0);
    let medium = total_area(3);
    let loose = total_area(8);
    assert!(medium <= tight);
    assert!(loose <= medium);
}

#[test]
fn heuristic_never_loses_to_the_two_stage_baseline_by_much() {
    // The paper's Figure 3 reports the *baseline* paying a penalty; allow a
    // small tolerance for individual graphs but require the aggregate to
    // favour the heuristic.
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(12), 4242);
    let mut heuristic_total = 0u64;
    let mut two_stage_total = 0u64;
    for _ in 0..12 {
        let graph = generator.generate();
        let lambda = lambda_min(&graph, &cost) * 13 / 10; // ~30% slack
        heuristic_total += DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap()
            .area();
        two_stage_total += TwoStageAllocator::new(&cost, lambda)
            .allocate(&graph)
            .unwrap()
            .area();
    }
    assert!(
        heuristic_total <= two_stage_total,
        "heuristic total {heuristic_total} should not exceed two-stage total {two_stage_total}"
    );
}

#[test]
fn allocation_is_deterministic() {
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(11), 55);
    for _ in 0..4 {
        let graph = generator.generate();
        let lambda = lambda_min(&graph, &cost) + 3;
        let a = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        let b = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        assert_eq!(a, b, "repeated allocation must give identical datapaths");
    }
}

#[test]
fn infeasible_constraints_are_rejected_consistently() {
    let cost = cost();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(7), 88);
    let graph = generator.generate();
    let too_tight = lambda_min(&graph, &cost) - 1;
    assert!(DpAllocator::new(&cost, AllocConfig::new(too_tight))
        .allocate(&graph)
        .is_err());
    assert!(TwoStageAllocator::new(&cost, too_tight)
        .allocate(&graph)
        .is_err());
    assert!(SortedCliqueAllocator::new(&cost, too_tight)
        .allocate(&graph)
        .is_err());
    assert!(ExhaustiveAllocator::new(&cost, too_tight)
        .allocate(&graph)
        .is_err());
}
