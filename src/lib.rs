//! Heuristic datapath allocation for multiple wordlength systems.
//!
//! This is the facade crate of the workspace reproducing Constantinides,
//! Cheung and Luk, *Heuristic Datapath Allocation for Multiple Wordlength
//! Systems* (DATE 2001).  It re-exports the individual crates so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`obs`] — zero-dependency telemetry: stage spans, metrics, Chrome
//!   traces, provably non-perturbing ([`mwl_obs`]);
//! * [`model`] — operations, wordlengths, resource types, cost models and the
//!   sequencing graph ([`mwl_model`]);
//! * [`sched`] — ASAP/ALAP and resource-constrained list scheduling with the
//!   wordlength-aware constraint of Eqn (3) ([`mwl_sched`]);
//! * [`wcg`] — the wordlength compatibility graph ([`mwl_wcg`]);
//! * [`alloc`] — the `DPAlloc` heuristic, `BindSelect` binding and the
//!   [`alloc::Datapath`] result type ([`mwl_core`]);
//! * [`lp`] — the simplex / branch-and-bound ILP substrate ([`mwl_lp`]);
//! * [`optimal`] — the optimal ILP and exhaustive allocators ([`mwl_optimal`]);
//! * [`baselines`] — the two-stage \[4\], wordlength-sorted \[14\] and
//!   uniform-wordlength baselines ([`mwl_baselines`]);
//! * [`tgff`] — the TGFF-style random graph generator ([`mwl_tgff`]);
//! * [`driver`] — the parallel batch-allocation engine ([`mwl_driver`]);
//! * [`serve`] — the allocation daemon: TCP wire protocol, bounded job queue
//!   with back-pressure, dedup cache, client and load generator
//!   ([`mwl_serve`]).
//!
//! A paper-to-module map with data-flow diagrams lives in
//! `docs/ARCHITECTURE.md`.
//!
//! # Quick start
//!
//! ```
//! use mwl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small dataflow: two multiplications feeding an addition.
//! let mut builder = SequencingGraphBuilder::new();
//! let x = builder.add_operation(OpShape::multiplier(8, 8));
//! let y = builder.add_operation(OpShape::multiplier(14, 10));
//! let sum = builder.add_operation(OpShape::adder(24));
//! builder.add_dependency(x, sum)?;
//! builder.add_dependency(y, sum)?;
//! let graph = builder.build()?;
//!
//! // Allocate with the SONIC cost model and a 12-step latency budget.
//! let cost = SonicCostModel::default();
//! let datapath = DpAllocator::new(&cost, AllocConfig::new(12)).allocate(&graph)?;
//! assert!(datapath.latency() <= 12);
//! datapath.validate(&graph, &cost)?;
//! println!("{datapath}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Operations, wordlengths, resources, cost models and sequencing graphs.
///
/// # Examples
///
/// Build the sequencing graph of the paper's Figure 1 — four multiplications
/// of individually optimised wordlengths feeding a small adder tree:
///
/// ```
/// use mwl::model::{OpShape, SequencingGraphBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let m1 = builder.add_named_operation(OpShape::multiplier(8, 8), "m1");
/// let m2 = builder.add_named_operation(OpShape::multiplier(12, 10), "m2");
/// let a1 = builder.add_named_operation(OpShape::adder(24), "a1");
/// builder.add_dependency(m1, a1)?;
/// builder.add_dependency(m2, a1)?;
/// let graph = builder.build()?;
///
/// assert_eq!(graph.len(), 3);
/// // Topological order respects the data dependencies.
/// let order = graph.topological_order();
/// assert_eq!(order.last(), Some(&a1));
/// // Multiplier shapes are operand-order normalised: 10x12 == 12x10.
/// assert_eq!(OpShape::multiplier(10, 12), OpShape::multiplier(12, 10));
/// # Ok(())
/// # }
/// ```
pub mod model {
    pub use mwl_model::*;
}

/// Zero-dependency telemetry: hierarchical stage spans, a metrics registry
/// (counters, gauges, log-bucketed histograms), Chrome trace-event and
/// metrics-snapshot JSON writers.
///
/// The defining invariant — pinned by `crates/core/tests/obs_identity.rs`
/// and `crates/driver/tests/obs_determinism.rs`, and measured by the
/// committed `BENCH_obs.json` gate — is that recording is **non-perturbing**:
/// allocation results are bit-identical with observability off, in
/// stage-timing mode and in full trace mode, at every worker count.  See
/// `docs/OBSERVABILITY.md` for the span taxonomy and metric names.
///
/// # Examples
///
/// Time the allocator's internal stages through the scratch-state recorder
/// (the batch driver and daemon drive the same hooks):
///
/// ```
/// use mwl::obs::{ObsMode, Stage};
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut generator = TgffGenerator::new(TgffConfig::with_ops(10), 5);
/// let graph = generator.generate();
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let lambda = critical_path_length(&graph, &native) + 2;
///
/// let mut scratch = AllocScratch::new();
/// scratch.obs.set_mode(ObsMode::Stages);
/// DpAllocator::new(&cost, AllocConfig::new(lambda))
///     .allocate_with_scratch(&graph, &mut scratch)?;
/// let stages = scratch.obs.take_stages();
/// assert!(stages.get(Stage::Schedule) > 0);
/// assert!(stages.get(Stage::Bind) > 0);
/// # Ok(())
/// # }
/// ```
///
/// Aggregate service-style metrics and render the snapshot document:
///
/// ```
/// use mwl::obs::{MetricsRegistry, Stopwatch};
///
/// let registry = MetricsRegistry::new();
/// let latency = registry.histogram("request_ns");
/// let clock = Stopwatch::start();
/// registry.counter("requests").add(1);
/// latency.record(clock.elapsed_ns().max(1));
/// let snapshot = registry.snapshot();
/// assert!(snapshot.to_json().contains("\"schema\":\"mwl_obs_metrics_v1\""));
/// ```
pub mod obs {
    pub use mwl_obs::*;
}

/// ASAP/ALAP, list scheduling and scheduling-set computation.
///
/// Implements Section 2.2 of the paper, including the wordlength-aware
/// scheduling-set constraint of Eqn (3) (see `mwl_sched::constraint`).
///
/// # Examples
///
/// Native latencies and the critical path give the minimum achievable
/// latency constraint `λ_min`:
///
/// ```
/// use mwl::model::{CostModel, OpShape, SequencingGraphBuilder, SonicCostModel};
/// use mwl::sched::{asap, critical_path_length, OpLatencies};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let m = builder.add_operation(OpShape::multiplier(16, 14));
/// let a = builder.add_operation(OpShape::adder(24));
/// builder.add_dependency(m, a)?;
/// let graph = builder.build()?;
///
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let schedule = asap(&graph, &native);
/// // The multiplication starts immediately, the addition after it retires.
/// assert_eq!(schedule.start(m), 0);
/// assert_eq!(schedule.start(a), native.get(m));
/// assert_eq!(
///     critical_path_length(&graph, &native),
///     native.get(m) + native.get(a),
/// );
/// # Ok(())
/// # }
/// ```
pub mod sched {
    pub use mwl_sched::*;
}

/// The wordlength compatibility graph `G(V, E)` of Section 2.1.
///
/// # Examples
///
/// Initially every resource type that covers an operation is connected to
/// it; refinement (Section 2.2) deletes edges to tighten latency bounds:
///
/// ```
/// use mwl::model::{OpShape, SequencingGraphBuilder, SonicCostModel};
/// use mwl::wcg::WordlengthCompatibilityGraph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let small = builder.add_operation(OpShape::multiplier(12, 8));
/// let large = builder.add_operation(OpShape::multiplier(20, 18));
/// builder.add_dependency(small, large)?;
/// let graph = builder.build()?;
///
/// use mwl::model::CostModel;
///
/// let cost = SonicCostModel::default();
/// let wcg = WordlengthCompatibilityGraph::new(&graph, &cost);
/// // The large multiplier type covers both operations, so the small
/// // multiplication has at least two candidate resource types...
/// assert!(wcg.resources_for(small).len() >= 2);
/// // ...its latency upper bound is at least its native latency (running on
/// // a wider candidate is slower)...
/// assert!(
///     wcg.upper_bound_latency(small)
///         >= cost.native_latency(graph.operation(small).shape())
/// );
/// // ...and at least the large multiplication's bound, since every resource
/// // covering the large shape also covers the small one.
/// assert!(wcg.upper_bound_latency(small) >= wcg.upper_bound_latency(large));
/// # Ok(())
/// # }
/// ```
pub mod wcg {
    pub use mwl_wcg::*;
}

/// The `DPAlloc` heuristic and the datapath result type.
///
/// Besides the paper's schedule/bind/refine loop, the allocator runs a
/// post-bind *instance-merging* pass (`mwl::alloc::merge`, on by default):
/// same-class instances are coalesced onto the component-wise-maximum
/// resource type whenever re-serialising their operations strictly reduces
/// area within the latency budget.  Disable it with
/// [`AllocConfig::with_instance_merging`](crate::alloc::AllocConfig::with_instance_merging)
/// to reproduce the paper's split-only behaviour:
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut generator = TgffGenerator::new(TgffConfig::with_ops(12), 606);
/// let graph = generator.generate();
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let lambda = critical_path_length(&graph, &native) + 10;
///
/// let merged = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
/// let split = DpAllocator::new(
///     &cost,
///     AllocConfig::new(lambda).with_instance_merging(false),
/// )
/// .allocate(&graph)?;
/// assert!(merged.area() <= split.area());
/// assert!(merged.latency() <= lambda);
/// # Ok(())
/// # }
/// ```
///
/// # Examples
///
/// The quickstart workload (`examples/quickstart.rs`): allocating Figure 1's
/// graph with a relaxed latency constraint lets the heuristic implement the
/// small `8×8` multiplication inside a larger, slower multiplier so the two
/// can share hardware — trading latency for area exactly as Figure 1(b)
/// illustrates:
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let m1 = builder.add_named_operation(OpShape::multiplier(8, 8), "m1");
/// let m2 = builder.add_named_operation(OpShape::multiplier(12, 10), "m2");
/// let m3 = builder.add_named_operation(OpShape::multiplier(16, 14), "m3");
/// let m4 = builder.add_named_operation(OpShape::multiplier(20, 18), "m4");
/// let a1 = builder.add_named_operation(OpShape::adder(24), "a1");
/// let a2 = builder.add_named_operation(OpShape::adder(25), "a2");
/// builder.add_dependency(m1, a1)?;
/// builder.add_dependency(m2, a1)?;
/// builder.add_dependency(m3, a2)?;
/// builder.add_dependency(m4, a2)?;
/// let graph = builder.build()?;
///
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let lambda_min = critical_path_length(&graph, &native);
///
/// let tight = DpAllocator::new(&cost, AllocConfig::new(lambda_min)).allocate(&graph)?;
/// let relaxed = DpAllocator::new(&cost, AllocConfig::new(lambda_min + 3)).allocate(&graph)?;
/// tight.validate(&graph, &cost)?;
/// relaxed.validate(&graph, &cost)?;
///
/// // Slack lets operations share: fewer instances, less area.
/// assert!(relaxed.num_instances() < tight.num_instances());
/// assert!(relaxed.area() < tight.area());
/// assert!(relaxed.latency() <= lambda_min + 3);
/// # Ok(())
/// # }
/// ```
///
/// When allocating many graphs on one thread, reuse an
/// [`alloc::AllocScratch`] across jobs so the inner loop stays
/// allocation-free (the batch driver does this per worker automatically);
/// results are bit-identical either way:
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// builder.add_operation(OpShape::multiplier(8, 8));
/// let graph = builder.build()?;
/// let cost = SonicCostModel::default();
///
/// let mut scratch = AllocScratch::new();
/// for lambda in [2, 4, 8] {
///     let outcome = DpAllocator::new(&cost, AllocConfig::new(lambda))
///         .allocate_with_scratch(&graph, &mut scratch)?;
///     assert!(outcome.datapath.latency() <= lambda);
/// }
/// # Ok(())
/// # }
/// ```
///
/// The frozen pre-optimization implementation is kept as the
/// [`alloc::reference`] module — the specification oracle the optimized
/// loop is regression-tested against, and the baseline of the committed
/// `BENCH_alloc.json` performance trajectory.
pub mod alloc {
    pub use mwl_core::*;
}

/// Simplex and branch-and-bound integer programming.
///
/// # Examples
///
/// A 0/1 knapsack: maximise `3x + 2y` subject to `2x + 2y <= 3`:
///
/// ```
/// use mwl::lp::{BranchBoundOptions, LpProblem, Sense};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut lp = LpProblem::new(Sense::Maximize);
/// let x = lp.add_binary(3.0);
/// let y = lp.add_binary(2.0);
/// lp.add_le(&[(x, 2.0), (y, 2.0)], 3.0);
/// let solution = lp.solve(BranchBoundOptions::default())?;
/// assert!((solution.objective - 3.0).abs() < 1e-6);
/// assert!((solution.values[x.index()] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub mod lp {
    pub use mwl_lp::*;
}

/// Optimal (ILP and exhaustive) allocation.
///
/// # Examples
///
/// On small graphs the exact solvers lower-bound the heuristic, which is how
/// the paper measures its 0-16% mean area premium (Figure 4):
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let m1 = builder.add_operation(OpShape::multiplier(8, 6));
/// let m2 = builder.add_operation(OpShape::multiplier(12, 10));
/// let a = builder.add_operation(OpShape::adder(22));
/// builder.add_dependency(m1, a)?;
/// builder.add_dependency(m2, a)?;
/// let graph = builder.build()?;
///
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let lambda = critical_path_length(&graph, &native) + 2;
///
/// let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
/// let optimum = ExhaustiveAllocator::new(&cost, lambda).allocate(&graph)?;
/// assert!(optimum.area() <= heuristic.area());
/// # Ok(())
/// # }
/// ```
pub mod optimal {
    pub use mwl_optimal::*;
}

/// Baseline allocators from the literature.
///
/// # Examples
///
/// A scaled-down version of the FIR-filter workload (`examples/fir_filter.rs`
/// uses 8 taps; 4 here keeps the doc-test fast): compare the heuristic
/// against the two-stage baseline \[4\] and the uniform-wordlength
/// (DSP-processor style) design:
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Per-tap wordlengths as a wordlength-optimisation tool would assign.
/// let mut builder = SequencingGraphBuilder::new();
/// let taps = [(4, 10), (9, 12), (9, 12), (4, 10)];
/// let products: Vec<_> = taps
///     .iter()
///     .map(|&(c, d)| builder.add_operation(OpShape::multiplier(c, d)))
///     .collect();
/// let s1 = builder.add_operation(OpShape::adder(16));
/// let s2 = builder.add_operation(OpShape::adder(16));
/// let s3 = builder.add_operation(OpShape::adder(16));
/// builder.add_dependency(products[0], s1)?;
/// builder.add_dependency(products[1], s1)?;
/// builder.add_dependency(products[2], s2)?;
/// builder.add_dependency(products[3], s2)?;
/// builder.add_dependency(s1, s3)?;
/// builder.add_dependency(s2, s3)?;
/// let graph = builder.build()?;
///
/// let cost = SonicCostModel::default();
/// let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
/// let lambda = critical_path_length(&graph, &native) + 4;
///
/// let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
/// let two_stage = TwoStageAllocator::new(&cost, lambda).allocate(&graph)?;
/// let uniform = UniformWordlengthAllocator::new(&cost, lambda).allocate(&graph)?;
/// heuristic.validate(&graph, &cost)?;
/// two_stage.validate(&graph, &cost)?;
/// uniform.validate(&graph, &cost)?;
/// assert!(heuristic.area() > 0);
/// # Ok(())
/// # }
/// ```
pub mod baselines {
    pub use mwl_baselines::*;
}

/// TGFF-style random sequencing-graph generation.
///
/// # Examples
///
/// Generation is seeded, so every experiment is reproducible:
///
/// ```
/// use mwl::prelude::*;
///
/// let mut a = TgffGenerator::new(TgffConfig::with_ops(12), 7);
/// let mut b = TgffGenerator::new(TgffConfig::with_ops(12), 7);
/// let (ga, gb) = (a.generate(), b.generate());
/// assert_eq!(ga.len(), 12);
/// assert_eq!(ga.len(), gb.len());
/// assert_eq!(
///     ga.operations().iter().map(|o| o.shape()).collect::<Vec<_>>(),
///     gb.operations().iter().map(|o| o.shape()).collect::<Vec<_>>(),
/// );
/// ```
pub mod tgff {
    pub use mwl_tgff::*;
}

/// Parallel batch allocation across a scoped worker pool.
///
/// Fans many (graph, λ-budget, config) jobs across threads with a shared
/// read-only cost cache; results are bit-identical for every worker count.
///
/// # Examples
///
/// Allocate a whole scenario family in one call — here the same seeded graph
/// under three latency budgets — and aggregate the outcomes:
///
/// ```
/// use mwl::prelude::*;
///
/// let mut generator = TgffGenerator::new(TgffConfig::with_ops(9), 11);
/// let graph = generator.generate();
/// let jobs: Vec<BatchJob> = [0u32, 15, 30]
///     .into_iter()
///     .map(|pct| {
///         BatchJob::new(
///             format!("relax+{pct}%"),
///             graph.clone(),
///             LatencySpec::RelaxPercent(pct),
///         )
///     })
///     .collect();
///
/// let cost = SonicCostModel::default();
/// let report = run_batch(&jobs, &cost, &BatchOptions::default());
/// assert_eq!(report.summary().succeeded, 3);
///
/// // Outcomes come back in submission order and respect their budgets;
/// // each carries a `JobStats` and the whole batch aggregates into a
/// // `BatchSummary` (both re-exported via `mwl::prelude`).
/// for (o, pct) in report.outcomes.iter().zip([0u32, 15, 30]) {
///     assert_eq!(o.label, format!("relax+{pct}%"));
///     let stats: &JobStats = o.result.as_ref().unwrap();
///     assert!(stats.latency <= stats.lambda);
///     // No job opted into the RTL oracle, so no check ran.
///     assert!(stats.rtl.is_none());
/// }
/// let summary: BatchSummary = report.summary();
/// assert_eq!(summary.succeeded, 3);
/// assert_eq!(summary.rtl_checked, 0);
/// ```
///
/// Opting a job into the RTL equivalence oracle attaches an
/// [`RtlCheck`](mwl_driver::RtlCheck) (also in the prelude) to its stats:
///
/// ```
/// use mwl::prelude::*;
///
/// let mut generator = TgffGenerator::new(TgffConfig::with_ops(8), 21);
/// let job = BatchJob::new("checked", generator.generate(), LatencySpec::RelaxSteps(2))
///     .with_rtl_check(true);
/// let cost = SonicCostModel::default();
/// let report = run_batch(&[job], &cost, &BatchOptions::sequential().with_rtl_vectors(2));
/// let rtl: &RtlCheck = report.outcomes[0]
///     .result
///     .as_ref()
///     .unwrap()
///     .rtl
///     .as_ref()
///     .unwrap();
/// assert!(rtl.passed);
/// assert_eq!(rtl.vectors, 2);
/// assert_eq!(report.summary().rtl_passed, 1);
/// ```
pub mod driver {
    pub use mwl_driver::*;
}

/// RTL backend: structural netlist lowering, cycle-accurate bit-true
/// simulation and Verilog-2001 emission of allocated datapaths.
///
/// The allocator stops at an abstract schedule + binding; this backend
/// produces the hardware the paper is actually about — shared functional
/// units behind steering muxes, lifetime-shared result registers, explicit
/// sign-extend/truncate width adapters and an FSM controller — and proves
/// the implementation faithful by simulating it cycle by cycle against a
/// reference fixed-point evaluation of the source graph.
///
/// # Examples
///
/// Allocate a multiply-accumulate kernel, verify the netlist bit-exactly
/// and emit synthesisable Verilog:
///
/// ```
/// use mwl::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut builder = SequencingGraphBuilder::new();
/// let m1 = builder.add_named_operation(OpShape::multiplier(8, 8), "m1");
/// let m2 = builder.add_named_operation(OpShape::multiplier(12, 10), "m2");
/// let a1 = builder.add_named_operation(OpShape::adder(24), "a1");
/// builder.add_dependency(m1, a1)?;
/// builder.add_dependency(m2, a1)?;
/// let graph = builder.build()?;
///
/// let cost = SonicCostModel::default();
/// let datapath = DpAllocator::new(&cost, AllocConfig::new(12)).allocate(&graph)?;
///
/// // Bit-true equivalence oracle: netlist simulation vs reference
/// // fixed-point evaluation, plus the area cross-check.
/// let vectors = random_vectors(&graph, 42, 8);
/// let report = check_equivalence(&graph, &datapath, &cost, &vectors)?;
/// assert_eq!(report.netlist_area, datapath.area());
///
/// // Inspect the structural netlist and print it as Verilog-2001.
/// let netlist = lower_datapath(&graph, &datapath, &cost, "mac")?;
/// assert_eq!(netlist.fus.len(), datapath.num_instances());
/// let verilog = emit_verilog(&netlist);
/// assert!(verilog.contains("module mac ("));
/// assert!(verilog.trim_end().ends_with("endmodule"));
/// # Ok(())
/// # }
/// ```
pub mod rtl {
    pub use mwl_rtl::*;
}

/// Allocation-as-a-service: a TCP daemon over the batch engine.
///
/// A [`serve::Server`] accepts newline-delimited JSON requests, admits jobs
/// into a bounded priority queue with explicit back-pressure, solves them on
/// persistent workers through the exact batch-engine path (results are
/// byte-identical to [`driver::run_batch`]), memoises completed results
/// under a content hash, and streams results back in submission order.  The
/// `serve` and `loadgen` binaries wrap it for deployment and measurement.
///
/// # Examples
///
/// Run a server on an OS-assigned port, round-trip one job and shut down
/// gracefully:
///
/// ```
/// use mwl::prelude::*;
/// use mwl::serve::wire::{JobConfig, SubmitRequest, WireGraph, WireOutcome};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = SpawnedServer::start(ServerConfig::default())?;
/// let mut client = Client::connect(server.addr())?;
///
/// let mut builder = SequencingGraphBuilder::new();
/// let m = builder.add_operation(OpShape::multiplier(8, 8));
/// let a = builder.add_operation(OpShape::adder(16));
/// builder.add_dependency(m, a)?;
/// let graph = builder.build()?;
///
/// let ack = client.submit(SubmitRequest {
///     id: 1,
///     label: None,
///     priority: 0,
///     graph: WireGraph::from_graph(&graph),
///     latency: LatencySpec::RelaxSteps(2),
///     config: JobConfig::default(),
/// })?;
/// assert_eq!(ack, SubmitAck::Accepted);
/// let (id, outcome) = client.next_result()?;
/// assert_eq!(id, 1);
/// assert!(matches!(outcome, WireOutcome::Ok(_)));
/// client.shutdown()?;
/// assert_eq!(server.join().completed, 1);
/// # Ok(())
/// # }
/// ```
pub mod serve {
    pub use mwl_serve::*;
}

/// Reference workloads shared by the examples, integration tests and
/// golden-file regressions.
pub mod workloads {
    use mwl_model::{ModelError, OpId, OpShape, SequencingGraph, SequencingGraphBuilder};

    /// Builds a direct-form FIR filter `y = Σ c_i · x_{n-i}`: one
    /// multiplication per tap at its `(coefficient, data)` wordlengths,
    /// summed by a balanced tree of `accumulator_width`-bit adders.
    ///
    /// This is the workload of `examples/fir_filter.rs` and of the Verilog
    /// golden test (`tests/rtl_golden.rs`); keeping it in one place keeps
    /// the two from drifting apart.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when `taps` is empty or a wordlength is out
    /// of range.
    ///
    /// # Examples
    ///
    /// ```
    /// let graph = mwl::workloads::fir_graph(&[(4, 10), (9, 12)], 16)?;
    /// assert_eq!(graph.len(), 3); // two taps + one adder
    /// assert_eq!(graph.sinks().len(), 1);
    /// # Ok::<(), mwl::model::ModelError>(())
    /// ```
    pub fn fir_graph(
        taps: &[(u32, u32)],
        accumulator_width: u32,
    ) -> Result<SequencingGraph, ModelError> {
        let mut builder = SequencingGraphBuilder::new();
        let products: Vec<OpId> = taps
            .iter()
            .enumerate()
            .map(|(i, &(coeff, data))| {
                builder.add_named_operation(OpShape::multiplier(coeff, data), format!("tap{i}"))
            })
            .collect();
        // Balanced adder tree over the products.
        let mut level = products;
        let mut adder_index = 0;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    let sum = builder.add_named_operation(
                        OpShape::adder(accumulator_width),
                        format!("acc{adder_index}"),
                    );
                    adder_index += 1;
                    builder.add_dependency(pair[0], sum)?;
                    builder.add_dependency(pair[1], sum)?;
                    next.push(sum);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        builder.build()
    }

    /// The 8-tap coefficient/data wordlengths used by the FIR example and
    /// the Verilog golden test: outer taps need far fewer bits than the
    /// centre taps, as a wordlength-optimisation tool would assign.
    pub const FIR8_TAPS: [(u32, u32); 8] = [
        (4, 10),
        (6, 10),
        (9, 12),
        (14, 14),
        (14, 14),
        (9, 12),
        (6, 10),
        (4, 10),
    ];

    /// Builds a direct-form-I IIR biquad section
    /// `y = b0·x + b1·x' + b2·x'' − (a1·y' + a2·y'')`: three feed-forward
    /// multiplications at `(coeff, data)` wordlengths, two feedback
    /// multiplications at `(coeff, accumulator)` wordlengths, and the
    /// accumulate/subtract combine at `accumulator_width` bits.
    ///
    /// The recursive part makes its multiplier shapes wider than the
    /// feed-forward ones — the per-operation wordlength diversity the
    /// multiple-wordlength allocator exists to exploit.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when a wordlength is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// let graph = mwl::workloads::iir_biquad_graph(10, 6, 18)?;
    /// assert_eq!(graph.len(), 9); // 5 multiplications + 4 combines
    /// assert_eq!(graph.sinks().len(), 1);
    /// # Ok::<(), mwl::model::ModelError>(())
    /// ```
    pub fn iir_biquad_graph(
        data_width: u32,
        coeff_width: u32,
        accumulator_width: u32,
    ) -> Result<SequencingGraph, ModelError> {
        let mut b = SequencingGraphBuilder::new();
        let forward: Vec<OpId> = (0..3)
            .map(|i| {
                b.add_named_operation(
                    OpShape::multiplier(coeff_width, data_width),
                    format!("b{i}"),
                )
            })
            .collect();
        let feedback: Vec<OpId> = (1..3)
            .map(|i| {
                b.add_named_operation(
                    OpShape::multiplier(coeff_width, accumulator_width),
                    format!("a{i}"),
                )
            })
            .collect();
        let ffsum0 = b.add_named_operation(OpShape::adder(accumulator_width), "ff_sum0");
        b.add_dependency(forward[0], ffsum0)?;
        b.add_dependency(forward[1], ffsum0)?;
        let ffsum1 = b.add_named_operation(OpShape::adder(accumulator_width), "ff_sum1");
        b.add_dependency(ffsum0, ffsum1)?;
        b.add_dependency(forward[2], ffsum1)?;
        let fbsum = b.add_named_operation(OpShape::adder(accumulator_width), "fb_sum");
        b.add_dependency(feedback[0], fbsum)?;
        b.add_dependency(feedback[1], fbsum)?;
        let out = b.add_named_operation(OpShape::subtractor(accumulator_width), "out");
        b.add_dependency(ffsum1, out)?;
        b.add_dependency(fbsum, out)?;
        b.build()
    }

    /// Builds a butterfly-factored 8-point DCT stage: four sum and four
    /// difference butterflies over the mirrored inputs, an even half that
    /// combines the sums with adders, and an odd half that rotates each
    /// difference through a `(coeff, data)` multiplication before pairwise
    /// recombination — 20 operations spanning several width classes.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when a wordlength is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// let graph = mwl::workloads::dct8_graph(12, 9)?;
    /// assert_eq!(graph.len(), 20);
    /// # Ok::<(), mwl::model::ModelError>(())
    /// ```
    pub fn dct8_graph(data_width: u32, coeff_width: u32) -> Result<SequencingGraph, ModelError> {
        let mut b = SequencingGraphBuilder::new();
        // Stage 1: butterflies x_i ± x_{7-i} over primary inputs.
        let sums: Vec<OpId> = (0..4)
            .map(|i| b.add_named_operation(OpShape::adder(data_width), format!("s{i}")))
            .collect();
        let diffs: Vec<OpId> = (0..4)
            .map(|i| b.add_named_operation(OpShape::subtractor(data_width), format!("d{i}")))
            .collect();
        // Even half: two more butterfly levels over the sums.
        let e0 = b.add_named_operation(OpShape::adder(data_width + 1), "e0");
        b.add_dependency(sums[0], e0)?;
        b.add_dependency(sums[3], e0)?;
        let e1 = b.add_named_operation(OpShape::adder(data_width + 1), "e1");
        b.add_dependency(sums[1], e1)?;
        b.add_dependency(sums[2], e1)?;
        let x0 = b.add_named_operation(OpShape::adder(data_width + 2), "X0");
        b.add_dependency(e0, x0)?;
        b.add_dependency(e1, x0)?;
        let x4 = b.add_named_operation(OpShape::subtractor(data_width + 2), "X4");
        b.add_dependency(e0, x4)?;
        b.add_dependency(e1, x4)?;
        // Odd half: rotate each difference, then recombine pairwise.
        let rotations: Vec<OpId> = diffs
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let m = b.add_named_operation(
                    OpShape::multiplier(coeff_width, data_width),
                    format!("rot{i}"),
                );
                b.add_dependency(d, m).map(|()| m)
            })
            .collect::<Result<_, _>>()?;
        let acc = coeff_width + data_width;
        let o0 = b.add_named_operation(OpShape::adder(acc), "o0");
        b.add_dependency(rotations[0], o0)?;
        b.add_dependency(rotations[1], o0)?;
        let o1 = b.add_named_operation(OpShape::adder(acc), "o1");
        b.add_dependency(rotations[2], o1)?;
        b.add_dependency(rotations[3], o1)?;
        let x2 = b.add_named_operation(OpShape::adder(acc + 1), "X2");
        b.add_dependency(o0, x2)?;
        b.add_dependency(o1, x2)?;
        let x6 = b.add_named_operation(OpShape::subtractor(acc + 1), "X6");
        b.add_dependency(o0, x6)?;
        b.add_dependency(o1, x6)?;
        b.build()
    }

    /// Builds a fully unrolled dot product `Σ a_i·b_i`: one multiplication
    /// per element at its `(a, b)` wordlengths, accumulated by a *serial*
    /// adder chain at `accumulator_width` bits (the FIR builder uses a
    /// balanced tree instead — the chain maximises value lifetimes, which
    /// stresses the register binder).
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] when `elements` is empty or a wordlength is
    /// out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// let graph = mwl::workloads::dot_product_graph(&[(4, 8), (6, 8), (8, 8)], 18)?;
    /// assert_eq!(graph.len(), 5); // 3 products + 2 chained accumulations
    /// assert_eq!(graph.sinks().len(), 1);
    /// # Ok::<(), mwl::model::ModelError>(())
    /// ```
    pub fn dot_product_graph(
        elements: &[(u32, u32)],
        accumulator_width: u32,
    ) -> Result<SequencingGraph, ModelError> {
        let mut b = SequencingGraphBuilder::new();
        let products: Vec<OpId> = elements
            .iter()
            .enumerate()
            .map(|(i, &(wa, wb))| {
                b.add_named_operation(OpShape::multiplier(wa, wb), format!("p{i}"))
            })
            .collect();
        let mut acc = products[0];
        for (i, &product) in products.iter().enumerate().skip(1) {
            let sum =
                b.add_named_operation(OpShape::adder(accumulator_width), format!("acc{}", i - 1));
            b.add_dependency(acc, sum)?;
            b.add_dependency(product, sum)?;
            acc = sum;
        }
        b.build()
    }

    /// A parse failure in [`parse_graph_trace`] or [`parse_lifetime_trace`]:
    /// the 1-based line number and what went wrong there.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TraceError {
        /// 1-based line number of the offending line.
        pub line: usize,
        /// Human-readable description of the problem.
        pub message: String,
    }

    impl std::fmt::Display for TraceError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }

    impl std::error::Error for TraceError {}

    /// Imports a sequencing graph from a line-oriented trace.
    ///
    /// The format is what a front-end compiler or profiler can emit with
    /// plain `printf`s — one fact per line, `#` comments and blank lines
    /// ignored:
    ///
    /// ```text
    /// op <name> add|sub <width>
    /// op <name> mul <a> <b>
    /// edge <from> <to>
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first offending line: unknown
    /// directives or op kinds, malformed widths, duplicate or unknown op
    /// names, and any structural [`ModelError`] (cycle, empty graph, …)
    /// raised when the graph is built.
    ///
    /// # Examples
    ///
    /// ```
    /// let graph = mwl::workloads::parse_graph_trace(
    ///     "# a multiply-accumulate\n\
    ///      op m0 mul 8 10\n\
    ///      op m1 mul 12 10\n\
    ///      op sum add 22\n\
    ///      edge m0 sum\n\
    ///      edge m1 sum\n",
    /// )?;
    /// assert_eq!(graph.len(), 3);
    /// assert_eq!(graph.sinks().len(), 1);
    /// # Ok::<(), mwl::workloads::TraceError>(())
    /// ```
    pub fn parse_graph_trace(text: &str) -> Result<SequencingGraph, TraceError> {
        let fail = |line: usize, message: String| TraceError { line, message };
        let mut builder = SequencingGraphBuilder::new();
        let mut names: std::collections::HashMap<&str, OpId> = std::collections::HashMap::new();
        let mut last_line = 0;
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            last_line = line;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let width = |field: &str| {
                field
                    .parse::<u32>()
                    .map_err(|_| fail(line, format!("invalid width '{field}'")))
            };
            match fields.as_slice() {
                ["op", name, kind, rest @ ..] => {
                    let shape = match (*kind, rest) {
                        ("add", [w]) => OpShape::adder(width(w)?),
                        ("sub", [w]) => OpShape::subtractor(width(w)?),
                        ("mul", [a, wb]) => OpShape::multiplier(width(a)?, width(wb)?),
                        ("add" | "sub", _) => {
                            return Err(fail(line, format!("'{kind}' takes one width")))
                        }
                        ("mul", _) => return Err(fail(line, "'mul' takes two widths".into())),
                        (other, _) => return Err(fail(line, format!("unknown op kind '{other}'"))),
                    };
                    let id = builder.add_named_operation(shape, name.to_string());
                    if names.insert(name, id).is_some() {
                        return Err(fail(line, format!("duplicate op name '{name}'")));
                    }
                }
                ["edge", from, to] => {
                    let id_of = |name: &str| {
                        names
                            .get(name)
                            .copied()
                            .ok_or_else(|| fail(line, format!("unknown op '{name}'")))
                    };
                    builder
                        .add_dependency(id_of(from)?, id_of(to)?)
                        .map_err(|e| fail(line, e.to_string()))?;
                }
                ["edge", ..] => return Err(fail(line, "'edge' takes two op names".into())),
                [directive, ..] => {
                    return Err(fail(line, format!("unknown directive '{directive}'")))
                }
                [] => unreachable!("blank lines are skipped"),
            }
        }
        builder.build().map_err(|e| fail(last_line, e.to_string()))
    }

    /// Imports a value-lifetime trace for the register binder: each
    /// non-comment line is `val <width> <born> <dies>` (cycles inclusive),
    /// returning the parallel width and lifetime vectors
    /// [`pack_registers`](mwl_core::pack_registers) takes.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for unknown directives, malformed numbers
    /// or a lifetime that dies before it is born.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwl::alloc::{pack_registers, BindingCertificate};
    ///
    /// let (widths, lifetimes) = mwl::workloads::parse_lifetime_trace(
    ///     "val 16 0 3\n\
    ///      val 16 4 6   # reusable: starts after the first dies\n\
    ///      val 12 2 5\n",
    /// )?;
    /// let binding = pack_registers(&widths, &lifetimes);
    /// assert_eq!(binding.registers(), 2); // the two 16-bit values share
    /// assert_eq!(binding.certificate, BindingCertificate::Optimal);
    /// # Ok::<(), mwl::workloads::TraceError>(())
    /// ```
    pub fn parse_lifetime_trace(
        text: &str,
    ) -> Result<(Vec<u32>, Vec<mwl_core::ValueLifetime>), TraceError> {
        let fail = |line: usize, message: String| TraceError { line, message };
        let mut widths = Vec::new();
        let mut lifetimes = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            let number = |field: &str| {
                field
                    .parse::<u32>()
                    .map_err(|_| fail(line, format!("invalid number '{field}'")))
            };
            match fields.as_slice() {
                ["val", w, born, dies] => {
                    let (width, born, dies) = (number(w)?, number(born)?, number(dies)?);
                    if dies < born {
                        return Err(fail(
                            line,
                            format!("value dies ({dies}) before born ({born})"),
                        ));
                    }
                    widths.push(width);
                    lifetimes.push(mwl_core::ValueLifetime { born, dies });
                }
                ["val", ..] => {
                    return Err(fail(line, "'val' takes width, born and dies".into()));
                }
                [directive, ..] => {
                    return Err(fail(line, format!("unknown directive '{directive}'")))
                }
                [] => unreachable!("blank lines are skipped"),
            }
        }
        Ok((widths, lifetimes))
    }
}

/// The most commonly used items in one import.
pub mod prelude {
    pub use mwl_baselines::{SortedCliqueAllocator, TwoStageAllocator, UniformWordlengthAllocator};
    pub use mwl_core::{
        merge_instances, pack_registers, run_portfolio, AllocConfig, AllocError, AllocScratch,
        BindingCertificate, CachedCostModel, Datapath, DpAllocator, MergeStats, PortfolioOutcome,
        PortfolioSpec, PortfolioStats, RegisterBinding, ResourceInstance, ValueLifetime,
    };
    pub use mwl_driver::{
        run_batch, BatchJob, BatchOptions, BatchReport, BatchSummary, JobOutcome, JobStats,
        LatencySpec, RtlCheck,
    };
    pub use mwl_model::{
        AreaBreakdown, CostModel, Cycles, OpId, OpKind, OpShape, Operation, ResourceClass,
        ResourceType, SequencingGraph, SequencingGraphBuilder, SonicCostModel, StorageCosts,
    };
    pub use mwl_obs::{ObsMode, Stage, StageNanos, Stopwatch};
    pub use mwl_optimal::{ExhaustiveAllocator, IlpAllocator};
    pub use mwl_rtl::{
        check_equivalence, emit_verilog, evaluate_reference, lower_datapath, random_vectors,
        simulate, EquivalenceReport, Netlist, NetlistStats, RtlError,
    };
    pub use mwl_sched::{asap, critical_path_length, OpLatencies, Schedule};
    pub use mwl_serve::{Client, ServerConfig, SpawnedServer, StatsSnapshot, SubmitAck};
    pub use mwl_tgff::{TgffConfig, TgffGenerator};
    pub use mwl_wcg::WordlengthCompatibilityGraph;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_main_workflow() {
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(6), 1);
        let graph = generator.generate();
        let cost = SonicCostModel::default();
        let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
        let lambda = critical_path_length(&graph, &native) + 2;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        datapath.validate(&graph, &cost).unwrap();
    }
}
