//! Heuristic datapath allocation for multiple wordlength systems.
//!
//! This is the facade crate of the workspace reproducing Constantinides,
//! Cheung and Luk, *Heuristic Datapath Allocation for Multiple Wordlength
//! Systems* (DATE 2001).  It re-exports the individual crates so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`model`] — operations, wordlengths, resource types, cost models and the
//!   sequencing graph ([`mwl_model`]);
//! * [`sched`] — ASAP/ALAP and resource-constrained list scheduling with the
//!   wordlength-aware constraint of Eqn (3) ([`mwl_sched`]);
//! * [`wcg`] — the wordlength compatibility graph ([`mwl_wcg`]);
//! * [`alloc`] — the `DPAlloc` heuristic, `BindSelect` binding and the
//!   [`alloc::Datapath`] result type ([`mwl_core`]);
//! * [`lp`] — the simplex / branch-and-bound ILP substrate ([`mwl_lp`]);
//! * [`optimal`] — the optimal ILP and exhaustive allocators ([`mwl_optimal`]);
//! * [`baselines`] — the two-stage \[4\], wordlength-sorted \[14\] and
//!   uniform-wordlength baselines ([`mwl_baselines`]);
//! * [`tgff`] — the TGFF-style random graph generator ([`mwl_tgff`]).
//!
//! # Quick start
//!
//! ```
//! use mwl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small dataflow: two multiplications feeding an addition.
//! let mut builder = SequencingGraphBuilder::new();
//! let x = builder.add_operation(OpShape::multiplier(8, 8));
//! let y = builder.add_operation(OpShape::multiplier(14, 10));
//! let sum = builder.add_operation(OpShape::adder(24));
//! builder.add_dependency(x, sum)?;
//! builder.add_dependency(y, sum)?;
//! let graph = builder.build()?;
//!
//! // Allocate with the SONIC cost model and a 12-step latency budget.
//! let cost = SonicCostModel::default();
//! let datapath = DpAllocator::new(&cost, AllocConfig::new(12)).allocate(&graph)?;
//! assert!(datapath.latency() <= 12);
//! datapath.validate(&graph, &cost)?;
//! println!("{datapath}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Operations, wordlengths, resources, cost models and sequencing graphs.
pub mod model {
    pub use mwl_model::*;
}

/// ASAP/ALAP, list scheduling and scheduling-set computation.
pub mod sched {
    pub use mwl_sched::*;
}

/// The wordlength compatibility graph.
pub mod wcg {
    pub use mwl_wcg::*;
}

/// The `DPAlloc` heuristic and the datapath result type.
pub mod alloc {
    pub use mwl_core::*;
}

/// Simplex and branch-and-bound integer programming.
pub mod lp {
    pub use mwl_lp::*;
}

/// Optimal (ILP and exhaustive) allocation.
pub mod optimal {
    pub use mwl_optimal::*;
}

/// Baseline allocators from the literature.
pub mod baselines {
    pub use mwl_baselines::*;
}

/// TGFF-style random sequencing-graph generation.
pub mod tgff {
    pub use mwl_tgff::*;
}

/// The most commonly used items in one import.
pub mod prelude {
    pub use mwl_baselines::{SortedCliqueAllocator, TwoStageAllocator, UniformWordlengthAllocator};
    pub use mwl_core::{AllocConfig, AllocError, Datapath, DpAllocator, ResourceInstance};
    pub use mwl_model::{
        CostModel, Cycles, OpId, OpKind, OpShape, Operation, ResourceClass, ResourceType,
        SequencingGraph, SequencingGraphBuilder, SonicCostModel,
    };
    pub use mwl_optimal::{ExhaustiveAllocator, IlpAllocator};
    pub use mwl_sched::{asap, critical_path_length, OpLatencies, Schedule};
    pub use mwl_tgff::{TgffConfig, TgffGenerator};
    pub use mwl_wcg::WordlengthCompatibilityGraph;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_main_workflow() {
        let mut generator = TgffGenerator::new(TgffConfig::with_ops(6), 1);
        let graph = generator.generate();
        let cost = SonicCostModel::default();
        let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
        let lambda = critical_path_length(&graph, &native) + 2;
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda))
            .allocate(&graph)
            .unwrap();
        datapath.validate(&graph, &cost).unwrap();
    }
}
