//! The wordlength compatibility graph of the paper's Figure 2, step by step.
//!
//! Two multiplications of different wordlengths are scheduled sequentially;
//! the example prints the graph's vertex sets (`O` and `R`), its wordlength
//! edges `H`, the latency upper bounds, and then demonstrates the refinement
//! step discussed in Section 2.2: once the edge between the small
//! multiplication and the large multiplier type is deleted, a single
//! multiplier resource no longer suffices even though the operations never
//! overlap in time.
//!
//! Run with: `cargo run --example compatibility_graph`

use mwl::prelude::*;
use mwl::sched::{scheduling_set, ListScheduler, SchedulePriority, SchedulingSetBound};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 2(a): two multiplications in a chain.
    let mut builder = SequencingGraphBuilder::new();
    let small = builder.add_named_operation(OpShape::multiplier(12, 8), "small");
    let large = builder.add_named_operation(OpShape::multiplier(20, 18), "large");
    builder.add_dependency(small, large)?;
    let graph = builder.build()?;

    let cost = SonicCostModel::default();
    let mut wcg = WordlengthCompatibilityGraph::new(&graph, &cost);
    println!("initial wordlength compatibility graph:\n{wcg}");

    // Figure 2(b): a schedule using the latency upper bounds.
    let upper = wcg.upper_bound_latencies();
    println!(
        "latency upper bounds: small = {} steps, large = {} steps",
        upper.get(small),
        upper.get(large)
    );
    let schedule = asap(&graph, &upper);
    wcg.attach_schedule(&schedule, &upper);
    println!("schedule: {schedule}");
    println!(
        "compatible(small -> large) = {}\n",
        wcg.compatible(small, large)
    );

    // With full flexibility one multiplier (the 20x18 type) covers both
    // operations, so the scheduling set has a single member and Eqn (3)
    // admits a one-multiplier schedule.
    let demo_bounds = BTreeMap::from([(ResourceClass::Multiplier, 1)]);
    println!(
        "one multiplier feasible before refinement: {}",
        schedules_with_bounds(&graph, &wcg, &demo_bounds)
    );

    // Refinement: delete the small operation's slowest edges (the paper's
    // example deletes {o1, '20x18 mult'}).
    let removed = wcg.refine_op(small);
    println!("\nrefined the small multiplication: removed {removed} wordlength edge(s)");
    println!("{wcg}");
    println!(
        "one multiplier feasible after refinement: {}",
        schedules_with_bounds(&graph, &wcg, &demo_bounds)
    );
    println!("two multipliers feasible after refinement: {}", {
        let bounds = BTreeMap::from([(ResourceClass::Multiplier, 2)]);
        schedules_with_bounds(&graph, &wcg, &bounds)
    });
    Ok(())
}

/// Attempts an Eqn (3)-constrained list schedule with the given per-class
/// bounds and reports whether it succeeds.
fn schedules_with_bounds(
    graph: &SequencingGraph,
    wcg: &WordlengthCompatibilityGraph,
    bounds: &BTreeMap<ResourceClass, usize>,
) -> bool {
    let upper = wcg.upper_bound_latencies();
    let lists = wcg.op_candidate_lists();
    let members = scheduling_set(&lists);
    let member_classes: Vec<ResourceClass> =
        members.iter().map(|&r| wcg.resource(r).class()).collect();
    let op_members: Vec<Vec<usize>> = graph
        .op_ids()
        .map(|o| {
            members
                .iter()
                .enumerate()
                .filter(|(_, &r)| wcg.has_edge(o, r))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    let op_classes: Vec<ResourceClass> = graph
        .operations()
        .iter()
        .map(|o| ResourceClass::for_kind(o.kind()))
        .collect();
    let constraint =
        SchedulingSetBound::new(op_classes, op_members, member_classes, bounds.clone());
    ListScheduler::new(SchedulePriority::CriticalPath)
        .schedule(graph, &upper, constraint)
        .is_ok()
}
