//! Quickstart: allocate the paper's motivational example (Figure 1).
//!
//! The sequencing graph has four multiplications of different wordlengths
//! feeding a small adder tree.  With a relaxed latency constraint the
//! heuristic implements the small multiplications inside larger (slower)
//! multiplier resources so that they can share hardware, which is exactly
//! the behaviour Figure 1(b) of the paper illustrates.
//!
//! Run with: `cargo run --example quickstart`

use mwl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the sequencing graph (data dependencies only; wordlengths are
    // per-operation, as produced by a wordlength-optimisation front-end such
    // as the paper's Synoptix).
    let mut builder = SequencingGraphBuilder::new();
    let m1 = builder.add_named_operation(OpShape::multiplier(8, 8), "m1");
    let m2 = builder.add_named_operation(OpShape::multiplier(12, 10), "m2");
    let m3 = builder.add_named_operation(OpShape::multiplier(16, 14), "m3");
    let m4 = builder.add_named_operation(OpShape::multiplier(20, 18), "m4");
    let a1 = builder.add_named_operation(OpShape::adder(24), "a1");
    let a2 = builder.add_named_operation(OpShape::adder(25), "a2");
    builder.add_dependency(m1, a1)?;
    builder.add_dependency(m2, a1)?;
    builder.add_dependency(m3, a2)?;
    builder.add_dependency(m4, a2)?;
    let graph = builder.build()?;
    println!("{graph}");

    let cost = SonicCostModel::default();
    let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
    let lambda_min = critical_path_length(&graph, &native);
    println!("minimum achievable latency: {lambda_min} control steps\n");

    // Allocate at the minimum latency and with 50% slack.
    for (label, lambda) in [
        ("tight", lambda_min),
        ("relaxed", lambda_min + lambda_min / 2),
    ] {
        let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
        datapath.validate(&graph, &cost)?;
        println!("--- {label} constraint (lambda = {lambda}) ---");
        println!("{datapath}");
        for op in graph.op_ids() {
            println!(
                "  {} implemented on {}",
                graph.operation(op),
                datapath.selected_resource(op)
            );
        }
        println!();
    }
    Ok(())
}
