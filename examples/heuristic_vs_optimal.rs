//! Heuristic versus optimal: a miniature of Figures 4 and 5 on random graphs.
//!
//! For a handful of random sequencing graphs the example runs the paper's
//! heuristic, the ILP optimum of reference \[5\] (built on the workspace's
//! own simplex/branch-and-bound solver) and the exhaustive oracle, and prints
//! the areas, the area premium of the heuristic and the runtimes.
//!
//! Run with: `cargo run --release --example heuristic_vs_optimal`

use std::time::{Duration, Instant};

use mwl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost = SonicCostModel::default();
    let mut generator = TgffGenerator::new(TgffConfig::with_ops(6), 2026);

    println!("graph  |O|  lambda  heuristic  optimal  premium%   t_heur     t_ilp");
    let mut total_premium = 0.0;
    let mut solved = 0usize;
    for index in 0..6 {
        let graph = generator.generate();
        let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
        let lambda = critical_path_length(&graph, &native) + 2;

        let start = Instant::now();
        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
        let heuristic_time = start.elapsed();
        heuristic.validate(&graph, &cost)?;

        let start = Instant::now();
        let optimal = IlpAllocator::new(&cost, lambda)
            .with_time_limit(Duration::from_secs(30))
            .allocate(&graph)?;
        let ilp_time = start.elapsed();
        optimal.datapath.validate(&graph, &cost)?;

        // The exhaustive oracle agrees with the ILP on instances this small.
        let brute = ExhaustiveAllocator::new(&cost, lambda).allocate(&graph)?;
        assert_eq!(brute.area(), optimal.datapath.area());

        let premium = (heuristic.area() as f64 - optimal.datapath.area() as f64)
            / optimal.datapath.area() as f64
            * 100.0;
        total_premium += premium;
        solved += 1;
        println!(
            "{index:<6} {:<4} {lambda:<7} {:<10} {:<8} {premium:<9.1} {heuristic_time:<9.2?} {ilp_time:.2?}",
            graph.len(),
            heuristic.area(),
            optimal.datapath.area(),
        );
    }
    println!(
        "\nmean area premium of the heuristic over the optimum: {:.1}%",
        total_premium / solved as f64
    );
    println!("(the paper reports 0-16% over 1-10 operations, at one to two orders of magnitude lower runtime)");
    Ok(())
}
