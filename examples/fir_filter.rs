//! A realistic DSP workload: an 8-tap direct-form FIR filter with optimised
//! per-coefficient wordlengths.
//!
//! Wordlength optimisation tools (the paper cites Synoptix) assign each
//! coefficient multiplication only as many bits as the output-noise budget
//! requires, so the taps have very different wordlengths.  This example
//! compares the paper's heuristic against the two-stage baseline \[4\] and
//! the uniform-wordlength (DSP-processor style) design across a range of
//! latency budgets — a miniature version of Figure 3 on a concrete filter.
//!
//! Run with: `cargo run --release --example fir_filter`

use mwl::prelude::*;

/// Builds a direct-form FIR filter: y = Σ c_i · x_{n-i}, with an adder tree.
fn build_fir(tap_wordlengths: &[(u32, u32)], accumulator_width: u32) -> SequencingGraph {
    let mut builder = SequencingGraphBuilder::new();
    let products: Vec<OpId> = tap_wordlengths
        .iter()
        .enumerate()
        .map(|(i, &(coeff, data))| {
            builder.add_named_operation(OpShape::multiplier(coeff, data), format!("tap{i}"))
        })
        .collect();
    // Balanced adder tree over the products.
    let mut level: Vec<OpId> = products;
    let mut adder_index = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let sum = builder.add_named_operation(
                    OpShape::adder(accumulator_width),
                    format!("acc{adder_index}"),
                );
                adder_index += 1;
                builder.add_dependency(pair[0], sum).expect("acyclic");
                builder.add_dependency(pair[1], sum).expect("acyclic");
                next.push(sum);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    builder.build().expect("non-empty")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coefficient/data wordlengths as a wordlength-optimisation tool would
    // assign them: the outer taps need far fewer bits than the centre taps.
    let taps = [
        (4, 10),
        (6, 10),
        (9, 12),
        (14, 14),
        (14, 14),
        (9, 12),
        (6, 10),
        (4, 10),
    ];
    let graph = build_fir(&taps, 16);
    println!(
        "8-tap FIR filter: {} operations ({} multiplications, {} additions)\n",
        graph.len(),
        taps.len(),
        graph.len() - taps.len()
    );

    let cost = SonicCostModel::default();
    let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
    let lambda_min = critical_path_length(&graph, &native);

    println!("latency   heuristic   two-stage [4]   uniform wordlength");
    for relax_percent in [0u32, 10, 20, 30, 50] {
        let lambda = lambda_min + (lambda_min * relax_percent).div_ceil(100);
        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
        heuristic.validate(&graph, &cost)?;
        let two_stage = TwoStageAllocator::new(&cost, lambda).allocate(&graph)?;
        let uniform = UniformWordlengthAllocator::new(&cost, lambda)
            .allocate(&graph)
            .map(|d| d.area().to_string())
            .unwrap_or_else(|_| "infeasible".to_string());
        println!(
            "{lambda:<9} {:<11} {:<15} {uniform}",
            heuristic.area(),
            two_stage.area(),
        );
    }
    println!("\n(areas in SONIC area units; lambda_min = {lambda_min} control steps)");

    // Show the actual binding for a relaxed budget.
    let lambda = lambda_min + lambda_min / 2;
    let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
    println!("\nbinding at lambda = {lambda}:\n{datapath}");
    Ok(())
}
