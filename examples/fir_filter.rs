//! A realistic DSP workload: an 8-tap direct-form FIR filter with optimised
//! per-coefficient wordlengths.
//!
//! Wordlength optimisation tools (the paper cites Synoptix) assign each
//! coefficient multiplication only as many bits as the output-noise budget
//! requires, so the taps have very different wordlengths.  This example
//! compares the paper's heuristic against the two-stage baseline \[4\] and
//! the uniform-wordlength (DSP-processor style) design across a range of
//! latency budgets — a miniature version of Figure 3 on a concrete filter.
//!
//! Run with: `cargo run --release --example fir_filter`

use mwl::prelude::*;
use mwl::workloads::{fir_graph, FIR8_TAPS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Coefficient/data wordlengths as a wordlength-optimisation tool would
    // assign them: the outer taps need far fewer bits than the centre taps.
    // The builder is shared with tests/rtl_golden.rs so the Verilog golden
    // file and this example cannot drift apart.
    let taps = FIR8_TAPS;
    let graph = fir_graph(&taps, 16)?;
    println!(
        "8-tap FIR filter: {} operations ({} multiplications, {} additions)\n",
        graph.len(),
        taps.len(),
        graph.len() - taps.len()
    );

    let cost = SonicCostModel::default();
    let native = OpLatencies::from_fn(&graph, |op| cost.native_latency(op.shape()));
    let lambda_min = critical_path_length(&graph, &native);

    println!("latency   heuristic   two-stage [4]   uniform wordlength");
    for relax_percent in [0u32, 10, 20, 30, 50] {
        let lambda = lambda_min + (lambda_min * relax_percent).div_ceil(100);
        let heuristic = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
        heuristic.validate(&graph, &cost)?;
        let two_stage = TwoStageAllocator::new(&cost, lambda).allocate(&graph)?;
        let uniform = UniformWordlengthAllocator::new(&cost, lambda)
            .allocate(&graph)
            .map(|d| d.area().to_string())
            .unwrap_or_else(|_| "infeasible".to_string());
        println!(
            "{lambda:<9} {:<11} {:<15} {uniform}",
            heuristic.area(),
            two_stage.area(),
        );
    }
    println!("\n(areas in SONIC area units; lambda_min = {lambda_min} control steps)");

    // Show the actual binding for a relaxed budget.
    let lambda = lambda_min + lambda_min / 2;
    let datapath = DpAllocator::new(&cost, AllocConfig::new(lambda)).allocate(&graph)?;
    println!("\nbinding at lambda = {lambda}:\n{datapath}");

    // Lower the allocated datapath to a structural netlist, verify it
    // bit-exactly against the reference fixed-point evaluation, and emit
    // the design as synthesisable Verilog-2001.
    let vectors = random_vectors(&graph, 2001, 16);
    let equivalence = check_equivalence(&graph, &datapath, &cost, &vectors)?;
    let netlist = lower_datapath(&graph, &datapath, &cost, "fir8")?;
    println!(
        "netlist: {} bit-true vectors checked, {} register binding, \
         area breakdown fu {} / registers {} / muxes {} \
         (zero storage coefficients: fu = datapath area = total), \
         {} registers ({} bits), {} mux arms, {} width adapters",
        equivalence.vectors,
        equivalence.certificate.as_str(),
        equivalence.area_breakdown.fu,
        equivalence.area_breakdown.register,
        equivalence.area_breakdown.mux,
        equivalence.stats.registers,
        equivalence.stats.register_bits,
        equivalence.stats.mux_arms,
        equivalence.stats.adapters,
    );

    let verilog = emit_verilog(&netlist);
    let first_lines: Vec<&str> = verilog.lines().take(12).collect();
    println!("\nemitted Verilog (head):\n{}\n...", first_lines.join("\n"));
    std::fs::create_dir_all("results")?;
    std::fs::write("results/fir_filter.v", &verilog)?;
    println!("full module written to results/fir_filter.v");
    Ok(())
}
